// Package tracecli wires the shared -trace flag of the cmd/upc-*
// binaries: importing it registers the flag, Start/Finish bracket the
// run. With -trace=out.json every engine the run creates streams into
// one Chrome trace-event file (open it in Perfetto or chrome://tracing),
// and the run's TraceDigest — an order-sensitive hash of the full event
// stream, identical across same-seed runs — is printed to stdout (the
// CI determinism gate diffs it).
package tracecli

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

var path = flag.String("trace", "",
	"write a Chrome trace-event JSON file of the run and print its TraceDigest")

var sess *trace.Session

// Start begins tracing if -trace was given. Call after flag.Parse.
// Exits immediately if the trace file cannot be created, so a bad path
// is reported before the sweep runs rather than after.
func Start() {
	if *path != "" {
		sess = trace.StartSession(*path)
		if err := sess.Err(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// Finish writes the trace file and prints the TraceDigest line. Call
// once after a successful run; a no-op when -trace was not given.
func Finish() {
	if sess == nil {
		return
	}
	if err := sess.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("TraceDigest: %016x (%d events)\n", sess.Digest(), sess.Events())
	// The notice goes to stderr so stdout stays byte-identical across
	// same-seed runs (the CI determinism gate diffs it).
	fmt.Fprintf(os.Stderr, "trace written to %s\n", *path)
	sess = nil
}

// Package tracecli wires the shared flags of the cmd/upc-* binaries:
// importing it registers -trace, -digest, -metrics, -analyze, -parallel
// and -faults, and Start/Finish bracket the run. With -trace=out.json every engine the
// run creates streams into one Chrome trace-event file (open it in
// Perfetto or chrome://tracing), and the run's TraceDigest — an
// order-sensitive hash of the full event stream, identical across
// same-seed runs — is printed to stdout (the CI determinism gate diffs
// it); -digest prints the TraceDigest alone, without buffering the
// stream or writing a file. With -metrics=out.json the run additionally
// aggregates the stream into a JSON run manifest (communication matrix,
// utilization timelines, virtual-time profile; see internal/metrics and
// cmd/upc-metrics). With -analyze=out.json the run replays the stream
// through the causality engine and writes the wait-state / critical-path
// analysis plus a .folded flamegraph companion (see internal/causality
// and cmd/upc-analyze); when -metrics is also given the analysis rides
// the manifest as its "analysis" section. With -parallel=N the experiment sweeps fan
// independent simulations out over N worker threads; results, stdout,
// the TraceDigest and the manifest are byte-identical at any N (see
// internal/sweep). With -shards=N the experiments that have sharded
// variants run each simulation on the node-sharded parallel engine with
// N worker threads advancing the lanes; output is again byte-identical
// at any N >= 1 (see internal/sim's ShardGroup).
package tracecli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/causality"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/trace"
)

var path = flag.String("trace", "",
	"write a Chrome trace-event JSON file of the run and print its TraceDigest")

var digest = flag.Bool("digest", false,
	"print the run's TraceDigest without writing a trace file (flat memory; what CI uses on large sweeps)")

var metricsPath = flag.String("metrics", "",
	"write a JSON run manifest (comm matrix, utilization, profile; see cmd/upc-metrics)")

var parallel = flag.Int("parallel", runtime.GOMAXPROCS(0),
	"worker threads for experiment sweeps (1 = sequential; output is identical at any value)")

var shards = flag.Int("shards", 0,
	"run sharded-engine experiment variants with N worker threads inside each simulation "+
		"(0 = legacy single-engine experiments; output is identical at any N >= 1)")

var analyzePath = flag.String("analyze", "",
	"write the causality analysis (wait states, blame, critical path) as JSON, "+
		"plus a folded-stack flamegraph next to it (see cmd/upc-analyze)")

var faultsPath = flag.String("faults", "",
	"JSON fault schedule to inject into every run (see internal/fault); "+
		"the run then exercises the self-healing comm runtime, deterministically")

var sess *trace.Session
var coll *metrics.Collection
var rec *causality.Recorder

// Start applies the shared flags: sets the sweep worker-pool width and
// begins tracing if -trace, -digest or -metrics was given. Call after
// flag.Parse. Exits immediately if the trace file cannot be created, so
// a bad path is reported before the sweep runs rather than after.
func Start() {
	if err := start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// start is Start without the exit, for tests.
func start() error {
	sweep.SetWorkers(*parallel)
	sim.SetShardWorkers(*shards)
	// The fault schedule is installed before the tracing early-return:
	// -faults works on its own, without any tracing flag.
	if *faultsPath != "" {
		sched, err := fault.Load(*faultsPath)
		if err != nil {
			return err
		}
		fault.SetDefault(sched)
	} else {
		fault.SetDefault(nil)
	}
	if *path == "" && !*digest && *metricsPath == "" && *analyzePath == "" {
		return nil
	}
	sess = trace.StartSession(*path)
	if err := sess.Err(); err != nil {
		sess.Close()
		sess = nil
		return err
	}
	if *metricsPath != "" {
		// The collection opts into link-occupancy events, so it must be
		// attached before the run builds its engines (capabilities are
		// resolved per engine at creation).
		coll = metrics.NewCollection()
		sess.Attach(coll)
	}
	if *analyzePath != "" {
		// Same ordering constraint: the recorder opts into completion-edge
		// events, and the emitters check that capability once per engine.
		rec = causality.NewRecorder()
		sess.Attach(rec)
	}
	return nil
}

// Finish writes the trace file and metrics manifest (if requested) and
// prints the TraceDigest line. Call once after a successful run; a
// no-op when no tracing flag was given.
func Finish() {
	if err := finish(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// finish is Finish without the exit, writing the digest line to w.
func finish(w io.Writer) error {
	if sess == nil {
		return nil
	}
	s, c, r := sess, coll, rec
	sess, coll, rec = nil, nil, nil
	if err := s.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "TraceDigest: %016x (%d events)\n", s.Digest(), s.Events())
	if *path != "" {
		// The notice goes to stderr so stdout stays byte-identical across
		// same-seed runs (the CI determinism gate diffs it).
		fmt.Fprintf(os.Stderr, "trace written to %s\n", *path)
	}
	var exp *causality.Export
	if r != nil {
		exp = r.Export()
		if err := exp.WriteFile(*analyzePath); err != nil {
			return err
		}
		folded := *analyzePath + ".folded"
		if err := os.WriteFile(folded, []byte(r.FoldedText()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "analysis written to %s (flamegraph: %s)\n", *analyzePath, folded)
	}
	if c != nil {
		m := c.Manifest(toolName(), runParams())
		m.Analysis = exp
		if err := m.WriteFile(*metricsPath); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "metrics manifest written to %s\n", *metricsPath)
	}
	return nil
}

// toolName reports the invoked binary's base name for the manifest's
// tool field.
func toolName() string {
	if len(os.Args) == 0 || os.Args[0] == "" {
		return "unknown"
	}
	return filepath.Base(os.Args[0])
}

// runParams captures the explicitly-set flags of the invocation for the
// manifest, excluding the harness flags: -trace/-digest/-parallel
// change no simulated outcome and -metrics names the output file, so
// recording them would make equal runs produce unequal manifests (the
// CI gate diffs manifests across -parallel=1 and -parallel=8).
// -shards is excluded for the worker-count part of the same reason:
// -shards=1 and -shards=8 select the same sharded simulation and must
// yield byte-identical manifests (CI diffs those too); the legacy/
// sharded experiment switch it also carries is visible in the rendered
// tables instead.
func runParams() map[string]string {
	p := map[string]string{}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "trace", "digest", "metrics", "parallel", "shards", "analyze":
			return
		}
		if strings.HasPrefix(f.Name, "test.") {
			return // the go-test harness's own flags
		}
		p[f.Name] = f.Value.String()
	})
	if len(p) == 0 {
		return nil
	}
	return p
}

package tracecli

import (
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// appFlag stands in for an application flag whose value must land in
// the manifest's params.
var appFlag = flag.String("tracecli-test-n", "", "test-only app flag")

// setFlags applies flag values for one subtest and restores them after.
func setFlags(t *testing.T, kv map[string]string) {
	t.Helper()
	names := make([]string, 0, len(kv))
	for k := range kv {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		old := flag.Lookup(k).Value.String()
		if err := flag.Set(k, kv[k]); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { flag.Set(k, old) })
	}
}

// runOne drives one tiny simulation through the process-default tracer.
func runOne(t *testing.T, seed int64) {
	t.Helper()
	eng := sim.New(seed)
	eng.Go("worker", func(p *sim.Proc) {
		end := p.TraceSpan("test", "phase")
		p.Advance(100)
		p.TraceInstant(trace.CatComm, "put", trace.ClassSelf, 64, trace.PackEndpoints(0, 0, 0, 0))
		end()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStartIsNoOpWithoutFlags(t *testing.T) {
	setFlags(t, map[string]string{"parallel": "3"})
	if err := start(); err != nil {
		t.Fatal(err)
	}
	if sess != nil {
		t.Error("session started without any tracing flag")
	}
	if got := sweep.Workers(); got != 3 {
		t.Errorf("workers = %d, want 3 (Start must apply -parallel)", got)
	}
	var b strings.Builder
	if err := finish(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("finish printed %q without a session", b.String())
	}
}

func TestDigestLine(t *testing.T) {
	setFlags(t, map[string]string{"digest": "true", "parallel": "1"})
	if err := start(); err != nil {
		t.Fatal(err)
	}
	runOne(t, 7)
	var b strings.Builder
	if err := finish(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "TraceDigest: ") {
		t.Fatalf("digest line = %q", out)
	}
	if trace.Default() != nil {
		t.Error("finish left a default tracer installed")
	}

	// Same seed, same digest line.
	if err := start(); err != nil {
		t.Fatal(err)
	}
	runOne(t, 7)
	var b2 strings.Builder
	if err := finish(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Errorf("same-seed digest lines differ:\n%q\n%q", out, b2.String())
	}
}

func TestMetricsExport(t *testing.T) {
	mpath := filepath.Join(t.TempDir(), "m.json")
	setFlags(t, map[string]string{
		"metrics": mpath, "parallel": "1", "tracecli-test-n": "64",
	})
	if err := start(); err != nil {
		t.Fatal(err)
	}
	if sess == nil || coll == nil {
		t.Fatal("-metrics must start a session with an attached collection")
	}
	if !trace.WantsUtil(trace.Default()) {
		t.Error("default tracer chain must inherit the collection's util opt-in")
	}
	runOne(t, 11)
	var b strings.Builder
	if err := finish(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "TraceDigest: ") {
		t.Errorf("metrics run must still print the digest line, got %q", b.String())
	}

	m, err := metrics.Load(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if m.Runs != 1 || m.Seeds[0] != 11 {
		t.Errorf("manifest runs=%d seeds=%v", m.Runs, m.Seeds)
	}
	if m.Comm == nil || m.Comm.Classes[0].Class != trace.ClassSelf || m.Comm.Classes[0].Bytes != 64 {
		t.Errorf("manifest comm = %+v", m.Comm)
	}
	if m.Profile == nil || m.Profile.Phases[0].Name != "test/phase" {
		t.Errorf("manifest profile = %+v", m.Profile)
	}
	if got := m.Params["tracecli-test-n"]; got != "64" {
		t.Errorf("params[tracecli-test-n] = %q, want 64", got)
	}
	recorded := make([]string, 0, len(m.Params))
	for k := range m.Params {
		recorded = append(recorded, k)
	}
	sort.Strings(recorded)
	for _, k := range recorded {
		switch k {
		case "trace", "digest", "metrics", "parallel":
			t.Errorf("harness flag %q leaked into params", k)
		}
		if strings.HasPrefix(k, "test.") {
			t.Errorf("go-test flag %q leaked into params", k)
		}
	}
	// The digest the manifest records is the session's.
	if !strings.Contains(b.String(), m.Digest) {
		t.Errorf("manifest digest %s not in digest line %q", m.Digest, b.String())
	}
}

func TestFaultsFlagInstallsDefaultSchedule(t *testing.T) {
	spath := filepath.Join(t.TempDir(), "sched.json")
	if err := os.WriteFile(spath, []byte(
		`{"name":"cli","actions":[{"op":"drop","at_s":0,"until_s":1,"prob":0.5}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	setFlags(t, map[string]string{"faults": spath})
	t.Cleanup(func() { fault.SetDefault(nil) })
	if err := start(); err != nil {
		t.Fatal(err)
	}
	s := fault.Default()
	if s == nil || s.Name != "cli" || len(s.Actions) != 1 || s.Actions[0].Src != -1 {
		t.Fatalf("installed default schedule = %+v", s)
	}

	// Clearing the flag clears the process default on the next Start.
	setFlags(t, map[string]string{"faults": ""})
	if err := start(); err != nil {
		t.Fatal(err)
	}
	if fault.Default() != nil {
		t.Error("empty -faults must clear the default schedule")
	}
}

func TestFaultsFlagRejectsBadSchedule(t *testing.T) {
	spath := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(spath, []byte(
		`{"actions":[{"op":"drop","at_s":0,"prob":7}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	setFlags(t, map[string]string{"faults": spath})
	t.Cleanup(func() { fault.SetDefault(nil) })
	if err := start(); err == nil {
		t.Fatal("start accepted a schedule with prob outside (0,1]")
	}
	if err := start(); err == nil {
		t.Fatal("retry should fail the same way")
	}
	if fault.Default() != nil {
		t.Error("failed start left a default schedule installed")
	}
}

func TestStartFailsOnBadTracePath(t *testing.T) {
	setFlags(t, map[string]string{
		"trace": filepath.Join(t.TempDir(), "missing-dir", "t.json"),
	})
	if err := start(); err == nil {
		t.Fatal("start succeeded with an unwritable trace path")
	}
	if sess != nil {
		t.Error("failed start left a session behind")
	}
	if trace.Default() != nil {
		t.Error("failed start left a default tracer installed")
	}
}

func TestMain(m *testing.M) {
	flag.Parse()
	os.Exit(m.Run())
}

package upc

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/trace"
)

// TestBlockingByteOpsNoAlloc pins the fault-free blocking byte transfers
// at zero allocations per operation: the UPC layer rides the pooled
// fabric records end to end and releases them internally, with no handle
// or retry context materialized. Threads 0 and 4 of the 8/4 layout are
// on different nodes, so this exercises the full network path.
func TestBlockingByteOpsNoAlloc(t *testing.T) {
	var putPer, getPer float64 = -1, -1
	var outstanding int64 = -1
	_, err := Run(testCfg(8, 4, Processes, true), func(th *Thread) {
		th.Barrier()
		if th.ID == 0 {
			for i := 0; i < 64; i++ {
				th.PutBytes(4, 8)
				th.GetBytes(4, 8)
			}
			putPer = testing.AllocsPerRun(200, func() { th.PutBytes(4, 8) })
			getPer = testing.AllocsPerRun(200, func() { th.GetBytes(4, 8) })
		}
		th.Barrier()
		if th.ID == 0 {
			outstanding = th.Runtime().Cluster.PoolStats().Outstanding()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if putPer != 0 {
		t.Errorf("blocking PutBytes allocates %v allocs/op, want 0", putPer)
	}
	if getPer != 0 {
		t.Errorf("blocking GetBytes allocates %v allocs/op, want 0", getPer)
	}
	if outstanding != 0 {
		t.Errorf("pool leak: %d records outstanding after the transfer loop", outstanding)
	}
}

// TestChaosSoakPoolsDrain is the pool reuse invariant under fault
// injection: across a soak of retried puts and gets through drop,
// duplicate and delay windows, every record taken from a free list must
// return to it — abandoned (timed-out) operations included, because the
// retry layer releases its hold and the last in-flight leg recycles the
// record when it drains. Outstanding() != 0 after quiescence means a
// Get without a matching Put, i.e. a leaked or double-held record.
func TestChaosSoakPoolsDrain(t *testing.T) {
	sched := &fault.Schedule{Actions: []fault.Action{
		{Op: fault.OpDrop, At: 0.0005, Until: 0.002, Prob: 0.5, Src: -1, Dst: -1},
		{Op: fault.OpDuplicate, At: 0.002, Until: 0.004, Prob: 0.5, Src: -1, Dst: -1},
		{Op: fault.OpDelay, At: 0.004, Until: 0.006, Prob: 0.5, Src: -1, Dst: -1, Extra: 0.0002},
	}}
	cfg := testCfg(8, 4, Processes, true)
	cfg.Faults = sched
	var outstanding int64 = -1
	_, err := Run(cfg, func(th *Thread) {
		s := Alloc[int64](th, 8*8, 8, 8)
		peer := (th.ID + 4) % 8 // always cross-node
		buf := make([]int64, 4)
		for round := 0; round < 40; round++ {
			if err := PutTErr(th, s, peer, 0, []int64{int64(th.ID), int64(round), 3, 4}); err != nil {
				t.Fatalf("thread %d round %d put: %v", th.ID, round, err)
			}
			if err := GetTErr(th, s, buf, peer, 0); err != nil {
				t.Fatalf("thread %d round %d get: %v", th.ID, round, err)
			}
		}
		th.Barrier()
		if th.ID == 0 {
			outstanding = th.Runtime().Cluster.PoolStats().Outstanding()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if outstanding != 0 {
		t.Errorf("pool leak under chaos: %d records outstanding after quiescence", outstanding)
	}
}

// TestEdgeEmissionOffNoAlloc pins the zero-cost-when-off contract of
// the completion-edge events the causality analysis consumes: with no
// edge-observing sink attached — the default — the gate (Runtime.edges,
// one cached bool) stays closed and the blocking byte-transfer hot
// path, which now carries the gated deliver/retry emission points,
// still runs at 0 allocs/op.
func TestEdgeEmissionOffNoAlloc(t *testing.T) {
	var putPer, getPer float64 = -1, -1
	edgesOn := true
	_, err := Run(testCfg(8, 4, Processes, true), func(th *Thread) {
		th.Barrier()
		if th.ID == 0 {
			edgesOn = th.Runtime().edges
			for i := 0; i < 64; i++ {
				th.PutBytes(4, 8)
				th.GetBytes(4, 8)
			}
			putPer = testing.AllocsPerRun(200, func() { th.PutBytes(4, 8) })
			getPer = testing.AllocsPerRun(200, func() { th.GetBytes(4, 8) })
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if edgesOn {
		t.Error("edge gate open without an edge-observing tracer")
	}
	if putPer != 0 {
		t.Errorf("untraced PutBytes allocates %v allocs/op, want 0", putPer)
	}
	if getPer != 0 {
		t.Errorf("untraced GetBytes allocates %v allocs/op, want 0", getPer)
	}
}

// TestEdgeEmissionOnIsGated is the other half of the pin: an
// edge-observing sink flips the gate on, and the same run emits the
// barrier/lock completion edges the analysis needs — proving the off
// path above exercised the same compiled-in emission points.
func TestEdgeEmissionOnIsGated(t *testing.T) {
	col := trace.NewCollector()
	cfg := testCfg(8, 4, Processes, true)
	cfg.Tracer = trace.Edged(col)
	_, err := Run(cfg, func(th *Thread) {
		if !th.Runtime().edges {
			t.Error("edge-observing tracer did not enable emission")
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	arrives := col.Count(trace.CatEdge, trace.EdgeBarArrive)
	releases := col.Count(trace.CatEdge, trace.EdgeBarRelease)
	if arrives == 0 || releases == 0 {
		t.Errorf("edge events missing with gate open: %d arrivals, %d releases", arrives, releases)
	}
}

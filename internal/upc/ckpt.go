package upc

import (
	"strconv"

	"repro/internal/trace"
)

// Barrier-aligned checkpointing and the rejoin protocol (DESIGN §15).
//
// When Config.Ckpt arms the layer, every Every-th barrier generation
// doubles as a coordinated checkpoint line: each thread snapshots its
// own blocks of the registered shared arrays (Shared.Persist /
// Shared2D.Persist) plus whatever application state its Checkpointer
// exports, and ships the replica to a surviving buddy thread — placed
// group-aware, preferring a cross-node peer so a whole-node crash
// cannot take a replica down with its owner, and falling back to a
// same-node (PSHM) peer, then to self. The shipment goes through the
// normal one-sided cost model, so checkpoint traffic shows up in comm
// matrices, trace timelines and the causality engine like any other
// put.
//
// A thread whose node the fault schedule revives rejoins at the next
// barrier generation: Rejoin restores the newest replica (a get from
// the buddy, charged through the cost model), clears the thread's dead
// mark so barrier membership re-admits it, and emits the rejoin edge
// the causality analyzer walks. Collective slots opened while the
// thread was dead are not replayed — rejoined threads must not lag
// into old collective sequences (the UTS workloads issue none mid-run).
//
// Armed-but-idle cost: a run with Ckpt.Every set but no faults pays one
// integer test per barrier and nothing on the one-sided hot path (the
// alloc-regression tests pin this).

// CkptConfig arms barrier-aligned checkpointing: every Every-th barrier
// generation checkpoints the registered state. Zero disables the layer.
type CkptConfig struct {
	Every int64
}

// Checkpointer exports application state beyond the registered shared
// arrays into the checkpoint line. CkptSnapshot returns an opaque
// snapshot plus its modeled byte volume; CkptRestore re-installs a
// snapshot after a rejoin. Both run on the owning thread's process.
type Checkpointer interface {
	CkptSnapshot() (snap any, bytes int64)
	CkptRestore(snap any)
}

// ckptObject is the per-thread snapshot surface the registered shared
// containers implement (Shared, Shared2D).
type ckptObject interface {
	ckptSave(th int) (snap any, bytes int64)
	ckptRestore(th int, snap any)
}

// ckptRec is one thread's newest replica: the generation it covers, the
// per-object snapshots, the application snapshot, the modeled volume,
// and the buddy thread holding it.
type ckptRec struct {
	gen   int64 // -1 = no checkpoint taken yet
	snaps []any
	app   any
	bytes int64
	buddy int
}

// persistObj registers o for checkpointing, once per object (threads
// all call Persist; pointer identity dedups). No-op when the layer is
// disarmed.
func (rt *Runtime) persistObj(o ckptObject) {
	if rt.ckptEvery == 0 {
		return
	}
	for _, p := range rt.persist {
		if p == o {
			return
		}
	}
	rt.persist = append(rt.persist, o)
}

// SetCheckpointer attaches this thread's application-state exporter to
// the checkpoint line. Call before the first checkpointed barrier.
func (t *Thread) SetCheckpointer(c Checkpointer) {
	if t.rt.ckptEvery == 0 {
		return
	}
	t.rt.ckptApps[t.ID] = c
}

// maybeCkpt runs the checkpoint line after barrier generation gen when
// the config selects it. The disarmed path is a single integer test.
func (t *Thread) maybeCkpt(gen int64) {
	if e := t.rt.ckptEvery; e == 0 || (gen+1)%e != 0 {
		return
	}
	t.runCkpt(gen)
}

// ckptBuddy picks the replica holder for thread id: the first live
// thread scanning from id's node-successor — a cross-node peer when the
// layout has one, wrapping through same-node (PSHM) peers, self as the
// last resort.
func (rt *Runtime) ckptBuddy(id int) int {
	n := rt.Cfg.Threads
	for step := 0; step < n-1; step++ {
		p := (id + rt.Cfg.ThreadsPerNode + step) % n
		if p == id {
			continue
		}
		if !rt.dead[p] && !(rt.faultsOn() && rt.Cluster.NodeDown(rt.places[p].Node)) {
			return p
		}
	}
	return id
}

// runCkpt takes one thread's checkpoint after generation gen: snapshot
// the registered objects and app state, ship the replica to the buddy
// through the cost model, and commit it only once the shipment lands.
// A thread that is dead or whose node is down skips the line; a failed
// shipment keeps the previous replica.
func (t *Thread) runCkpt(gen int64) {
	rt := t.rt
	if rt.faultsOn() && (rt.dead[t.ID] || t.Failed()) {
		return
	}
	var snaps []any
	var total int64
	for _, o := range rt.persist {
		s, b := o.ckptSave(t.ID)
		snaps = append(snaps, s)
		total += b
	}
	var app any
	if c := rt.ckptApps[t.ID]; c != nil {
		s, b := c.CkptSnapshot()
		app = s
		total += b
	}
	if len(snaps) == 0 && app == nil {
		return
	}
	buddy := rt.ckptBuddy(t.ID)
	end := t.P.TraceSpan("upc", "ckpt")
	if buddy == t.ID {
		t.MemStream(total)
	} else if err := t.PutBytesErr(buddy, total); err != nil {
		end()
		t.FaultEvent("ckpt-fail", buddy, total)
		return
	}
	end()
	rec := &rt.ckptStore[t.ID]
	rec.gen, rec.snaps, rec.app, rec.bytes, rec.buddy = gen, snaps, app, total, buddy
	t.FaultEvent("ckpt", buddy, total)
	if rt.edges {
		t.P.TraceInstant(trace.CatEdge, trace.EdgeCkpt, strconv.FormatInt(gen, 10),
			total, trace.PackEndpoints(t.ID, buddy, t.Place.Node, rt.places[buddy].Node))
	}
}

// ReviveScheduled reports whether the fault schedule revives this
// thread's node after the current virtual time — i.e. whether parking
// in AwaitRevive is guaranteed a wake-up. A thread whose node died for
// good sees false and should Retire permanently.
func (t *Thread) ReviveScheduled() bool {
	rt := t.rt
	return rt.faultsOn() && rt.inj.WillRevive(t.Place.Node)
}

// AwaitRevive parks the thread until its node's scheduled revival.
// Check ReviveScheduled first: without a booked revival the park would
// never wake. Returns immediately when the node is up.
func (t *Thread) AwaitRevive() {
	rt := t.rt
	if !rt.faultsOn() {
		return
	}
	node := t.Place.Node
	for rt.Cluster.NodeDown(node) {
		rt.reviveQ[node].Wait(t.P, "upc-revive")
	}
}

// Rejoin re-admits a retired thread after its node's revival: the dead
// mark clears (barrier membership includes it again from the next
// generation), the newest checkpoint replica is restored — a get from
// the buddy charged through the cost model; an unreachable buddy falls
// back to a zero-state rebirth — and the rejoin edge is emitted for the
// causality analyzer. Returns the restored byte volume. The thread must
// re-enter the application's own membership structures (steal rings,
// probe sets) itself. No-op unless the thread actually retired.
func (t *Thread) Rejoin() int64 {
	rt := t.rt
	if !rt.faultsOn() || !rt.dead[t.ID] {
		return 0
	}
	rt.dead[t.ID] = false
	rt.nDead--
	var restored int64
	buddy := t.ID
	if rt.ckptEvery > 0 {
		if rec := &rt.ckptStore[t.ID]; rec.gen >= 0 {
			buddy = rec.buddy
			ok := true
			if buddy == t.ID {
				t.MemStream(rec.bytes)
			} else if !t.Alive(buddy) {
				ok = false
			} else if err := t.GetBytesErr(buddy, rec.bytes); err != nil {
				ok = false
			}
			if ok {
				for i, o := range rt.persist {
					o.ckptRestore(t.ID, rec.snaps[i])
				}
				if c := rt.ckptApps[t.ID]; c != nil && rec.app != nil {
					c.CkptRestore(rec.app)
				}
				restored = rec.bytes
			} else {
				t.FaultEvent("failover", buddy, rec.bytes)
				buddy = t.ID
			}
		}
	}
	t.FaultEvent("rejoin", buddy, restored)
	if rt.edges {
		t.P.TraceInstant(trace.CatEdge, trace.EdgeRejoin, "", restored,
			trace.PackEndpoints(buddy, t.ID, rt.places[buddy].Node, t.Place.Node))
	}
	return restored
}

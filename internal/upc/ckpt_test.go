package upc

import (
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ckptApp is a minimal Checkpointer: one integer of application state
// whose modeled snapshot volume is 64 bytes.
type ckptApp struct{ val int }

func (a *ckptApp) CkptSnapshot() (any, int64) { return a.val, 64 }
func (a *ckptApp) CkptRestore(s any)          { a.val = s.(int) }

// TestCkptRoundTripRejoin is the reincarnation acceptance path at the
// UPC level: with Every=1 each barrier doubles as a checkpoint line,
// node 1 crashes and revives mid-run, and its threads rejoin at the
// next generation with their Shared, Shared2D and Checkpointer state
// restored from the cross-node buddy replicas.
func TestCkptRoundTripRejoin(t *testing.T) {
	sched := &fault.Schedule{Actions: []fault.Action{
		{Op: fault.OpCrash, At: 0.001, Until: 0.002, Node: 1, Src: -1, Dst: -1},
	}}
	cfg := faultCfg(sched)
	cfg.Ckpt = CkptConfig{Every: 1}
	col := trace.NewCollector()
	cfg.Tracer = col
	restored := make([]int64, 8)
	_, err := Run(cfg, func(th *Thread) {
		s := Alloc[int](th, 8, 8, 1)
		m := Alloc2D[int](th, 4, 8, 2, 4, 8) // 2x2 tile per thread
		s.Persist(th)
		m.Persist(th)
		app := &ckptApp{val: 1000 + th.ID}
		th.SetCheckpointer(app)
		s.Local(th)[0] = 100 + th.ID
		tile := m.Tile(th)
		for i := range tile {
			tile[i] = th.ID*10 + i
		}
		th.Barrier() // checkpoint line: replicas ship to the buddies
		th.P.Advance(1500 * sim.Microsecond)
		if th.Failed() {
			// Crash: lose everything, retire from the collectives, park
			// until the scheduled revival, restore from the replica.
			s.Local(th)[0] = -1
			for i := range tile {
				tile[i] = -1
			}
			app.val = -1
			th.Retire()
			if !th.ReviveScheduled() {
				t.Errorf("thread %d: scheduled revival not visible", th.ID)
				return
			}
			th.AwaitRevive()
			restored[th.ID] = th.Rejoin()
		}
		// Survivors and the reborn meet at one more checkpointed barrier
		// well after the revival: rejoin must have re-admitted the dead.
		if target := sim.Time(3 * sim.Millisecond); th.Now() < target {
			th.P.Advance(target - th.Now())
		}
		if err := th.BarrierErr(); err != nil {
			t.Errorf("thread %d post-rejoin barrier: %v", th.ID, err)
		}
		if got := s.Local(th)[0]; got != 100+th.ID {
			t.Errorf("thread %d Shared after rejoin = %d, want %d", th.ID, got, 100+th.ID)
		}
		for i := range tile {
			if tile[i] != th.ID*10+i {
				t.Errorf("thread %d Shared2D tile[%d] after rejoin = %d, want %d",
					th.ID, i, tile[i], th.ID*10+i)
				break
			}
		}
		if app.val != 1000+th.ID {
			t.Errorf("thread %d app state after rejoin = %d, want %d", th.ID, app.val, 1000+th.ID)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Replica volume per thread: one Shared elem (8B) + a 2x2 tile (32B)
	// + the 64B app snapshot.
	for id := 4; id < 8; id++ {
		if restored[id] != 8+32+64 {
			t.Errorf("thread %d restored %d bytes, want 104", id, restored[id])
		}
	}
	if got := col.Count(trace.CatComm, "ckpt"); got < 8 {
		t.Errorf("ckpt instants = %d, want >= 8 (every thread checkpoints at the line)", got)
	}
	if got := col.Count(trace.CatComm, "rejoin"); got != 4 {
		t.Errorf("rejoin instants = %d, want 4 (one per revived thread)", got)
	}
}

// TestStaleEpochFenceDropsStraddlingPut pins the membership-epoch fence:
// a put issued before a crash whose payload would land after the node's
// revival must NOT corrupt the new incarnation's restored state — the
// delivery-time fence drops the payload and the waiter gets a typed
// ErrStaleEpoch instead of a silent success.
func TestStaleEpochFenceDropsStraddlingPut(t *testing.T) {
	// A short bounce: down at 1ms, back at 1.05ms — shorter than the
	// straddling transfer, so the payload arrives into the next life.
	sched := &fault.Schedule{Actions: []fault.Action{
		{Op: fault.OpCrash, At: 0.001, Until: 0.00105, Node: 1, Src: -1, Dst: -1},
	}}
	cfg := faultCfg(sched)
	col := trace.NewCollector()
	cfg.Tracer = col
	var staleErr error
	var dstWord int
	_, err := Run(cfg, func(th *Thread) {
		const block = 1 << 16
		s := Alloc[int](th, 8*block, 8, block)
		th.Barrier()
		if th.ID == 0 {
			// Issue at 0.9ms; the ~256KB transfer keeps the payload in
			// flight across the whole bounce window.
			th.P.Advance(900 * sim.Microsecond)
			payload := make([]int, 1<<15)
			for i := range payload {
				payload[i] = i + 1
			}
			staleErr = PutTErr(th, s, 4, 0, payload)
			dstWord = s.Partition(4)[0]
		} else {
			th.P.Advance(2 * sim.Millisecond)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(staleErr, fault.ErrStaleEpoch) {
		t.Fatalf("straddling put: err = %v, want ErrStaleEpoch", staleErr)
	}
	var ce *fault.CommError
	if !errors.As(staleErr, &ce) || ce.Op != "put" || ce.Dst != 4 {
		t.Errorf("straddling put error = %#v, want CommError{Op: put, Dst: 4}", staleErr)
	}
	if dstWord != 0 {
		t.Errorf("destination partition = %d after fenced put, want 0 (payload must be dropped)", dstWord)
	}
	if col.Count(trace.CatComm, "stale-drop") == 0 {
		t.Error("no stale-drop instant: the fence never fired, the payload landed somewhere")
	}
}

// TestCkptArmedIdleNoAlloc pins the armed-but-idle cost of the
// checkpoint layer: a run with Ckpt.Every set and arrays registered —
// but no checkpoint generation reached and no faults — must keep the
// blocking byte transfers at zero allocations per op, exactly like the
// unarmed hot path.
func TestCkptArmedIdleNoAlloc(t *testing.T) {
	cfg := testCfg(8, 4, Processes, true)
	cfg.Ckpt = CkptConfig{Every: 1 << 30}
	var putPer, getPer float64 = -1, -1
	_, err := Run(cfg, func(th *Thread) {
		s := Alloc[int64](th, 8, 8, 1)
		s.Persist(th)
		th.Barrier()
		if th.ID == 0 {
			for i := 0; i < 64; i++ {
				th.PutBytes(4, 8)
				th.GetBytes(4, 8)
			}
			putPer = testing.AllocsPerRun(200, func() { th.PutBytes(4, 8) })
			getPer = testing.AllocsPerRun(200, func() { th.GetBytes(4, 8) })
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if putPer != 0 {
		t.Errorf("ckpt-armed PutBytes allocates %v allocs/op, want 0", putPer)
	}
	if getPer != 0 {
		t.Errorf("ckpt-armed GetBytes allocates %v allocs/op, want 0", getPer)
	}
}

package upc

import (
	"math"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Collective rendezvous machinery: every thread's k-th collective call
// resolves to one slot; the last arrival combines the contributions and
// books the release after the modeled tree cost.

type collSlot struct {
	seq     int // collective sequence number (completion-edge labels)
	arrived int
	present []bool // which threads contributed (faults only)
	vals    []any
	bytes   int64
	combine func(vals []any) any
	fired   bool
	result  any
	ev      *sim.Event
}

func (rt *Runtime) collSlot(seq int) *collSlot {
	for len(rt.colls) <= seq {
		rt.colls = append(rt.colls, nil)
	}
	if rt.colls[seq] == nil {
		rt.colls[seq] = &collSlot{
			seq:     seq,
			vals:    make([]any, rt.Cfg.Threads),
			present: make([]bool, rt.Cfg.Threads),
			ev:      &sim.Event{}, //upcvet:poolalloc -- one slot per collective phase, amortized over THREADS arrivals
		}
	}
	return rt.colls[seq]
}

// fire combines the contributions received so far and books the release.
// Under fault injection a dead thread's entry in vals stays nil; combine
// closures skip nil entries. id is the thread whose arrival (or
// retirement) completed the slot — the one the release edge blames.
func (slot *collSlot) fire(rt *Runtime, id int) {
	slot.fired = true
	slot.result = slot.combine(slot.vals)
	if rt.edges {
		rt.threads[id].P.TraceInstant(trace.CatEdge, trace.EdgeBarRelease,
			"coll", int64(slot.seq), rt.packSelf(id))
	}
	rt.Eng.After(rt.collCost(slot.bytes), slot.ev.Fire)
}

// complete reports whether every live thread has contributed.
func (slot *collSlot) complete(rt *Runtime) bool {
	for i, p := range slot.present {
		if !p && !rt.dead[i] {
			return false
		}
	}
	return true
}

// collCost models a binomial-tree collective moving bytes per round:
// ceil(log2(nodes)) network rounds plus an intra-node combine.
func (rt *Runtime) collCost(bytes int64) sim.Duration {
	cond := &rt.Cluster.Conduit
	cost := 2 * cond.LoopbackLatency
	if rt.nodesUsed > 1 {
		rounds := int64(math.Ceil(math.Log2(float64(rt.nodesUsed))))
		per := cond.Latency + cond.SendOverhead + cond.RecvOverhead +
			sim.TransferTime(bytes, cond.ConnBW)
		cost += sim.Duration(rounds) * per
	}
	return cost
}

// runCollective enters thread t's next collective with contribution val;
// the last live arrival runs combine over the contributions (indexed by
// thread id; entries of crashed threads are nil) and every participant
// returns the combined result after the tree cost for the given payload
// size. Retiring threads re-check in-progress slots (Thread.Retire), so
// a crash between two threads' arrivals does not hang the survivors.
func runCollective(t *Thread, val any, bytes int64, combine func(vals []any) any) any {
	end := t.P.TraceSpanArg("upc", "collective", "", bytes)
	rt := t.rt
	slot := rt.collSlot(t.collSeq)
	t.collSeq++
	slot.vals[t.ID] = val
	slot.present[t.ID] = true
	slot.arrived++
	if rt.edges {
		t.P.TraceInstant(trace.CatEdge, trace.EdgeBarArrive,
			"coll", int64(slot.seq), rt.packSelf(t.ID))
	}
	if slot.combine == nil {
		slot.combine, slot.bytes = combine, bytes
	}
	if !rt.faultsOn() {
		if slot.arrived == t.N {
			slot.fire(rt, t.ID)
		}
	} else if !slot.fired && slot.complete(rt) {
		slot.fire(rt, t.ID)
	}
	slot.ev.Wait(t.P)
	end()
	return slot.result
}

// AllReduce combines one value per thread with an associative operator and
// returns the reduction on every thread (upc_all_reduce + broadcast).
// Under fault injection, threads that crashed before contributing are
// simply absent from the reduction.
func AllReduce[T any](t *Thread, val T, elemBytes int, combine func(a, b T) T) T {
	r := runCollective(t, val, int64(elemBytes), func(vals []any) any {
		var acc T
		first := true
		for _, v := range vals {
			if v == nil {
				continue // crashed before contributing
			}
			if first {
				acc, first = v.(T), false
				continue
			}
			acc = combine(acc, v.(T))
		}
		return acc
	})
	return r.(T)
}

// AllReduceSum sums one float64 per thread across all threads.
func AllReduceSum(t *Thread, v float64) float64 {
	return AllReduce(t, v, 8, func(a, b float64) float64 { return a + b })
}

// AllReduceMax takes the maximum of one float64 per thread.
func AllReduceMax(t *Thread, v float64) float64 {
	return AllReduce(t, v, 8, func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	})
}

// AllReduceSumInt sums one int64 per thread.
func AllReduceSumInt(t *Thread, v int64) int64 {
	return AllReduce(t, v, 8, func(a, b int64) int64 { return a + b })
}

// Broadcast distributes root's value to every thread (upc_all_broadcast).
// Under fault injection the root must contribute before crashing; fault
// schedules must keep the broadcast root's node alive.
func Broadcast[T any](t *Thread, root int, val T, elemBytes int) T {
	r := runCollective(t, val, int64(elemBytes), func(vals []any) any {
		return vals[root]
	})
	return r.(T)
}

// AllGather returns the slice of every thread's contribution, indexed by
// thread id, on every thread (upc_all_gather_all). Entries of threads
// that crashed before contributing are the zero value.
func AllGather[T any](t *Thread, val T, elemBytes int) []T {
	r := runCollective(t, val, int64(elemBytes)*int64(t.N), func(vals []any) any {
		out := make([]T, len(vals))
		for i, v := range vals {
			if v != nil {
				out[i] = v.(T)
			}
		}
		return out
	})
	return r.([]T)
}

package upc

import (
	"math"

	"repro/internal/sim"
)

// Collective rendezvous machinery: every thread's k-th collective call
// resolves to one slot; the last arrival combines the contributions and
// books the release after the modeled tree cost.

type collSlot struct {
	arrived int
	vals    []any
	result  any
	ev      *sim.Event
}

func (rt *Runtime) collSlot(seq int) *collSlot {
	for len(rt.colls) <= seq {
		rt.colls = append(rt.colls, nil)
	}
	if rt.colls[seq] == nil {
		rt.colls[seq] = &collSlot{
			vals: make([]any, rt.Cfg.Threads),
			ev:   &sim.Event{},
		}
	}
	return rt.colls[seq]
}

// collCost models a binomial-tree collective moving bytes per round:
// ceil(log2(nodes)) network rounds plus an intra-node combine.
func (rt *Runtime) collCost(bytes int64) sim.Duration {
	cond := &rt.Cluster.Conduit
	cost := 2 * cond.LoopbackLatency
	if rt.nodesUsed > 1 {
		rounds := int64(math.Ceil(math.Log2(float64(rt.nodesUsed))))
		per := cond.Latency + cond.SendOverhead + cond.RecvOverhead +
			sim.TransferTime(bytes, cond.ConnBW)
		cost += sim.Duration(rounds) * per
	}
	return cost
}

// runCollective enters thread t's next collective with contribution val;
// the last arrival runs combine over all contributions (indexed by thread
// id) and every thread returns the combined result after the tree cost for
// the given payload size.
func runCollective(t *Thread, val any, bytes int64, combine func(vals []any) any) any {
	end := t.P.TraceSpanArg("upc", "collective", "", bytes)
	slot := t.rt.collSlot(t.collSeq)
	t.collSeq++
	slot.vals[t.ID] = val
	slot.arrived++
	if slot.arrived == t.N {
		slot.result = combine(slot.vals)
		t.rt.Eng.After(t.rt.collCost(bytes), slot.ev.Fire)
	}
	slot.ev.Wait(t.P)
	end()
	return slot.result
}

// AllReduce combines one value per thread with an associative operator and
// returns the reduction on every thread (upc_all_reduce + broadcast).
func AllReduce[T any](t *Thread, val T, elemBytes int, combine func(a, b T) T) T {
	r := runCollective(t, val, int64(elemBytes), func(vals []any) any {
		acc := vals[0].(T)
		for _, v := range vals[1:] {
			acc = combine(acc, v.(T))
		}
		return acc
	})
	return r.(T)
}

// AllReduceSum sums one float64 per thread across all threads.
func AllReduceSum(t *Thread, v float64) float64 {
	return AllReduce(t, v, 8, func(a, b float64) float64 { return a + b })
}

// AllReduceMax takes the maximum of one float64 per thread.
func AllReduceMax(t *Thread, v float64) float64 {
	return AllReduce(t, v, 8, func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	})
}

// AllReduceSumInt sums one int64 per thread.
func AllReduceSumInt(t *Thread, v int64) int64 {
	return AllReduce(t, v, 8, func(a, b int64) int64 { return a + b })
}

// Broadcast distributes root's value to every thread (upc_all_broadcast).
func Broadcast[T any](t *Thread, root int, val T, elemBytes int) T {
	r := runCollective(t, val, int64(elemBytes), func(vals []any) any {
		return vals[root]
	})
	return r.(T)
}

// AllGather returns the slice of every thread's contribution, indexed by
// thread id, on every thread (upc_all_gather_all).
func AllGather[T any](t *Thread, val T, elemBytes int) []T {
	r := runCollective(t, val, int64(elemBytes)*int64(t.N), func(vals []any) any {
		out := make([]T, len(vals))
		for i, v := range vals {
			out[i] = v.(T)
		}
		return out
	})
	return r.([]T)
}

package upc

import "fmt"

// RangeError is the typed error of a shared-array access outside the
// owner's partition. The legacy APIs panic with it as the panic value;
// the Err variants return it.
type RangeError struct {
	Op      string // "Put", "Get", "Copy(src)", ...
	Off     int    // requested start offset
	N       int    // requested element count
	PartLen int    // owner's partition length
}

func (e *RangeError) Error() string {
	return fmt.Sprintf("upc: %s range [%d:%d) outside partition of %d elements",
		e.Op, e.Off, e.Off+e.N, e.PartLen)
}

// checkRangeErr validates a partition-relative range, returning the
// typed error on misuse.
func checkRangeErr(partLen, off, n int, op string) error {
	if off < 0 || n < 0 || off+n > partLen {
		return &RangeError{Op: op, Off: off, N: n, PartLen: partLen}
	}
	return nil
}

package upc

import (
	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Self-healing layer: when a fault schedule is installed (Config.Faults
// or the process default), one-sided operations on network paths gain
// virtual-time timeouts with capped exponential backoff and bounded
// retries, barriers and collectives release on the live threads alone,
// and applications can poll Failed/Alive and Retire crashed threads so
// the survivors finish the run. Without a schedule every hook collapses
// to a nil check and the runtime behaves exactly as before.

// faultsOn reports whether this run has a fault schedule installed.
func (rt *Runtime) faultsOn() bool { return rt.inj != nil }

// FaultsOn reports whether a fault schedule is installed on this run.
func (rt *Runtime) FaultsOn() bool { return rt.faultsOn() }

// RetryPolicy reports the run's active retry policy (zero when no fault
// schedule is installed).
func (rt *Runtime) RetryPolicy() fault.RetryPolicy { return rt.retry }

// LiveThreads reports how many threads have not retired.
func (rt *Runtime) LiveThreads() int { return rt.Cfg.Threads - rt.nDead }

// Failed reports whether this thread's own node is crashed under the
// run's fault schedule. Fault-tolerant applications poll it at work-loop
// boundaries and Retire when it reports true.
func (t *Thread) Failed() bool {
	return t.rt.faultsOn() && t.rt.Cluster.NodeDown(t.Place.Node)
}

// Alive reports whether peer is usable as a communication target: it has
// not retired and its node is up. Always true without a fault schedule.
func (t *Thread) Alive(peer int) bool {
	rt := t.rt
	if !rt.faultsOn() {
		return true
	}
	return !rt.dead[peer] && !rt.Cluster.NodeDown(rt.places[peer].Node)
}

// Retire removes this thread from the SPMD collective population after
// its node crashed: the in-progress barrier generation and collective
// slots re-check for release on the survivors alone, and future ones
// never wait for it. Idempotent; the thread must not issue further
// barriers or collectives afterwards.
func (t *Thread) Retire() {
	rt := t.rt
	if rt.dead[t.ID] {
		return
	}
	rt.dead[t.ID] = true
	rt.nDead++
	t.FaultEvent("retire", t.ID, 0)
	rt.bar.maybeRelease(rt, t.ID)
	for _, slot := range rt.colls {
		if slot != nil && !slot.fired && slot.combine != nil && slot.complete(rt) {
			slot.fire(rt, t.ID)
		}
	}
}

// FaultEvent emits one recovery-visibility instant (comm-matrix class
// fault) from this thread toward peer: timeouts, retries, failovers.
// Free when untraced.
func (t *Thread) FaultEvent(name string, peer int, bytes int64) {
	if !t.rt.Eng.Tracing() {
		return
	}
	t.P.TraceInstant(trace.CatComm, name, trace.ClassFault, bytes,
		trace.PackEndpoints(t.ID, peer, t.Place.Node, t.rt.places[peer].Node))
}

// networkPath reports whether a transfer to peer crosses the NIC (the
// conduit or its loopback) — the paths where messages can be lost.
// Shared-memory copies are not subject to message faults.
func (t *Thread) networkPath(peer int) bool {
	if peer == t.ID {
		return false
	}
	return !(topo.SameNode(t.Place, t.rt.places[peer]) && t.rt.Cfg.sharedMem())
}

// retriable reports whether an op toward peer needs timeout/retry
// protection: only network paths under an installed fault schedule.
func (t *Thread) retriable(peer int) bool {
	return t.rt.faultsOn() && t.networkPath(peer)
}

// nodeInc reports the current incarnation of peer's node. Only call
// under an installed fault schedule.
func (t *Thread) nodeInc(peer int) int64 {
	return t.rt.inj.Incarnation(t.rt.places[peer].Node)
}

// epochStale reports whether an op issued when this thread's node and
// peer's node had incarnations (si, pi) now straddles a reincarnation
// of either end — the membership-epoch fence.
func (t *Thread) epochStale(peer int, si, pi int64) bool {
	return t.nodeInc(t.ID) != si || t.nodeInc(peer) != pi
}

// fenceApply wraps a network payload apply with the delivery-time
// membership-epoch fence: if either endpoint node was reincarnated
// since issue, or the destination is down at delivery, the payload is
// dropped (with a comm-matrix "stale-drop" instant) instead of
// corrupting the new life's restored state. Fault-free runs and
// payload-free transfers pass through untouched, keeping the hot path
// allocation-free.
func (t *Thread) fenceApply(peer int, bytes int64, apply func()) func() {
	rt := t.rt
	if apply == nil || !rt.faultsOn() {
		return apply
	}
	srcN, dstN := t.Place.Node, rt.places[peer].Node
	si, pi := rt.inj.Incarnation(srcN), rt.inj.Incarnation(dstN)
	tid, pid := t.ID, peer
	return func() {
		if rt.inj.Incarnation(srcN) != si || rt.inj.Incarnation(dstN) != pi ||
			rt.Cluster.NodeDown(dstN) {
			if rt.Eng.Tracing() {
				rt.Eng.TraceInstant(trace.CatComm, "stale-drop", trace.ClassFault,
					bytes, trace.PackEndpoints(tid, pid, srcN, dstN))
			}
			return
		}
		apply()
	}
}

// expectXfer estimates the fault-free completion time of a transfer, fed
// into the retry policy's per-attempt timeouts so big payloads on slow
// conduits are not declared lost while still streaming.
func (t *Thread) expectXfer(bytes int64) sim.Duration {
	cond := &t.rt.Cluster.Conduit
	return 2*cond.Latency + sim.TransferTime(bytes, cond.ConnBW)
}

// commError builds the typed failure of an exhausted recovery.
func (t *Thread) commError(op string, peer, attempts int, cause error) error {
	return &fault.CommError{Op: op, Src: t.ID, Dst: peer, Attempts: attempts, Err: cause}
}

// reliableWait drives an already-issued network op to completion under
// the retry policy: each attempt gets a growing virtual-time deadline;
// on timeout the op is re-issued after a capped exponential backoff
// (payload applies are idempotent copies, so a late original delivery or
// an injected duplicate is harmless). Returns the op that completed, or
// a typed CommError when retries are exhausted or a node died.
func (t *Thread) reliableWait(opName string, peer int, bytes int64,
	op *fabric.NetOp, reissue func() *fabric.NetOp, si, pi int64) (*fabric.NetOp, error) {
	rp := t.rt.retry
	xfer := t.expectXfer(bytes)
	attempts := 1
	for try := 0; ; try++ {
		if op.Remote.WaitTimeout(t.P, rp.AttemptTimeout(try, xfer)) {
			// The fabric-level completion fired, but if an endpoint was
			// reincarnated since issue the delivery-time fence dropped the
			// payload — success here would be a lie.
			if t.epochStale(peer, si, pi) {
				op.Release()
				return nil, t.commError(opName, peer, attempts, fault.ErrStaleEpoch)
			}
			return op, nil
		}
		t.FaultEvent("timeout", peer, bytes)
		// Epoch fence before the liveness checks: an endpoint that crashed
		// AND revived within the timeout window is alive again, but the op
		// belongs to its previous incarnation — retrying it into the new
		// life would bypass the checkpoint restore. Typed as ErrStaleEpoch
		// so callers reissue fresh operations instead.
		if t.epochStale(peer, si, pi) {
			op.Release()
			return nil, t.commError(opName, peer, attempts, fault.ErrStaleEpoch)
		}
		if t.Failed() || !t.Alive(peer) {
			op.Release()
			return nil, t.commError(opName, peer, attempts, fault.ErrNodeDown)
		}
		if try >= rp.MaxRetries {
			op.Release()
			return nil, t.commError(opName, peer, attempts, fault.ErrTimeout)
		}
		t.P.Advance(rp.BackoffFor(try + 1))
		// The peer may have crashed (or crossed a reincarnation) while we
		// backed off.
		if t.epochStale(peer, si, pi) {
			op.Release()
			return nil, t.commError(opName, peer, attempts, fault.ErrStaleEpoch)
		}
		if t.Failed() || !t.Alive(peer) {
			op.Release()
			return nil, t.commError(opName, peer, attempts, fault.ErrNodeDown)
		}
		t.FaultEvent("retry", peer, bytes)
		if t.rt.edges {
			t.P.TraceInstant(trace.CatEdge, trace.EdgeRetry, opName, int64(attempts),
				trace.PackEndpoints(t.ID, peer, t.Place.Node, t.rt.places[peer].Node))
		}
		// Abandon the timed-out op before reissuing: dropping the hold lets
		// its pooled record recycle once any in-flight legs (a delayed
		// original, an injected duplicate) drain. Nothing reads it again —
		// the handle is repointed at the reissue.
		op.Release()
		op = reissue()
		attempts++
	}
}

// armRetry attaches the retry context to a freshly issued async handle
// when the op needs protection; WaitSync then recovers lost messages
// transparently. No-op (and no allocation is retained) otherwise.
func (t *Thread) armRetry(h *Handle, opName string, peer int, bytes int64,
	reissue func() *fabric.NetOp) {
	if !t.retriable(peer) {
		return
	}
	h.t, h.opName, h.peer, h.bytes, h.reissue = t, opName, peer, bytes, reissue
	h.srcInc, h.dstInc = t.nodeInc(t.ID), t.nodeInc(peer)
}

// WaitSyncErr blocks until the asynchronous operation completes,
// recovering lost messages under the run's retry policy when the handle
// was issued on a protected path. It is the error-returning form of
// WaitSync.
func (t *Thread) WaitSyncErr(h *Handle) error {
	if h.op == nil {
		return nil
	}
	if h.reissue == nil {
		op := h.op
		h.op = nil
		op.WaitRemote(t.P)
		op.Release()
		return nil
	}
	op, err := t.reliableWait(h.opName, h.peer, h.bytes, h.op, h.reissue, h.srcInc, h.dstInc)
	h.reissue = nil
	h.op = nil // the wait consumed the operation either way; Try reads done
	if err != nil {
		return err
	}
	op.Release()
	return nil
}

// BarrierErr is Barrier with failure detection: instead of hanging when
// the barrier can never release, it gives up after the retry policy's
// deadline ladder and returns a typed error. A barrier that is merely
// slow (survivors still arriving within the deadlines) succeeds.
func (t *Thread) BarrierErr() error {
	rt := t.rt
	if !rt.faultsOn() {
		t.Barrier()
		return nil
	}
	if t.Failed() {
		return t.commError("barrier", t.ID, 0, fault.ErrNodeDown)
	}
	t.flushXlateCounters()
	end := t.P.TraceSpan("upc", "barrier")
	defer end()
	gen := rt.bar.seq
	ev := rt.bar.notify(rt, t.ID)
	rp := rt.retry
	attempts := 0
	for try := 0; try <= rp.MaxRetries; try++ {
		attempts++
		if ev.WaitTimeout(t.P, rp.AttemptTimeout(try, rt.barCost)) {
			t.maybeCkpt(gen)
			return nil
		}
		t.FaultEvent("timeout", t.ID, 0)
		if t.Failed() {
			return t.commError("barrier", t.ID, attempts, fault.ErrNodeDown)
		}
	}
	return t.commError("barrier", t.ID, attempts, fault.ErrTimeout)
}

// ---- Error-returning one-sided operations ----
//
// The Err variants recover from injected message loss on network paths
// and surface unrecoverable failures (crashed nodes, exhausted retries,
// out-of-range accesses) as typed errors. The legacy void forms delegate
// to them and panic on error, preserving their historical contract.

// PutBytesErr is PutBytes with fault recovery and typed errors. On a
// fault-free run the blocking form never materializes a handle or retry
// context: it rides the pooled fabric record end to end, allocation-free.
func (t *Thread) PutBytesErr(dst int, bytes int64) error {
	if !t.retriable(dst) {
		op := t.putBytes(dst, bytes, nil)
		op.WaitRemote(t.P)
		op.Release()
		t.remoteAck(dst)
		return nil
	}
	h, err := t.putBytesAsyncErr(dst, bytes, nil)
	if err != nil {
		return err
	}
	if err := t.WaitSyncErr(h); err != nil {
		return err
	}
	t.remoteAck(dst)
	return nil
}

// GetBytesErr is GetBytes with fault recovery and typed errors. Like
// PutBytesErr, the fault-free blocking form is allocation-free.
func (t *Thread) GetBytesErr(src int, bytes int64) error {
	if !t.retriable(src) {
		op := t.getBytes(src, bytes, nil)
		op.WaitRemote(t.P)
		op.Release()
		return nil
	}
	if t.Failed() || !t.Alive(src) {
		return t.commError("get", src, 0, fault.ErrNodeDown)
	}
	issue := func() *fabric.NetOp { return t.getBytes(src, bytes, nil) }
	h := &Handle{op: issue()}
	t.armRetry(h, "get", src, bytes, issue)
	return t.WaitSyncErr(h)
}

// putBytesAsyncErr issues a protected put, failing fast when either end
// is already down. The async contract hands the caller an owned Handle,
// so this path allocates exactly that handle on fault-free runs.
func (t *Thread) putBytesAsyncErr(dst int, bytes int64, apply func()) (*Handle, error) {
	if !t.retriable(dst) {
		return &Handle{op: t.putBytes(dst, bytes, apply)}, nil
	}
	if t.Failed() || !t.Alive(dst) {
		return nil, t.commError("put", dst, 0, fault.ErrNodeDown)
	}
	issue := func() *fabric.NetOp { return t.putBytes(dst, bytes, apply) }
	h := &Handle{op: issue()}
	t.armRetry(h, "put", dst, bytes, issue)
	return h, nil
}

// PutAsyncTErr is PutAsyncT with typed range errors and a retry-armed
// handle: WaitSyncErr on the result recovers lost messages.
func PutAsyncTErr[T any](t *Thread, s *Shared[T], owner, off int, src []T) (*Handle, error) {
	if err := checkRangeErr(len(s.segs[owner]), off, len(src), "Put"); err != nil {
		return nil, err
	}
	snap := make([]T, len(src))
	copy(snap, src)
	dst := s.segs[owner]
	return t.putBytesAsyncErr(owner, int64(len(src)*s.elemBytes), func() {
		copy(dst[off:], snap)
	})
}

// PutTErr is PutT with fault recovery and typed errors.
func PutTErr[T any](t *Thread, s *Shared[T], owner, off int, src []T) error {
	h, err := PutAsyncTErr(t, s, owner, off, src)
	if err != nil {
		return err
	}
	if err := t.WaitSyncErr(h); err != nil {
		return err
	}
	t.remoteAck(owner)
	return nil
}

// GetAsyncTErr is GetAsyncT with typed range errors and a retry-armed
// handle.
func GetAsyncTErr[T any](t *Thread, s *Shared[T], dst []T, owner, off int) (*Handle, error) {
	if err := checkRangeErr(len(s.segs[owner]), off, len(dst), "Get"); err != nil {
		return nil, err
	}
	if t.retriable(owner) && (t.Failed() || !t.Alive(owner)) {
		return nil, t.commError("get", owner, 0, fault.ErrNodeDown)
	}
	src := s.segs[owner]
	n := len(dst)
	issue := func() *fabric.NetOp {
		return t.getBytes(owner, int64(n*s.elemBytes), func() {
			copy(dst, src[off:off+n])
		})
	}
	h := &Handle{op: issue()}
	t.armRetry(h, "get", owner, int64(n*s.elemBytes), issue)
	return h, nil
}

// GetTErr is GetT with fault recovery and typed errors.
func GetTErr[T any](t *Thread, s *Shared[T], dst []T, owner, off int) error {
	h, err := GetAsyncTErr(t, s, dst, owner, off)
	if err != nil {
		return err
	}
	return t.WaitSyncErr(h)
}

// ReadElemErr is ReadElem with fault recovery and typed errors.
func ReadElemErr[T any](t *Thread, s *Shared[T], i int) (T, error) {
	owner, local := s.Owner(i), s.LocalIndex(i)
	t.xlateAccess(s.id, i/s.block)
	if t.Castable(owner) {
		t.MemStreamFrom(int64(s.elemBytes), t.rt.places[owner].Socket)
		return s.segs[owner][local], nil
	}
	buf := make([]T, 1)
	if err := GetTErr(t, s, buf, owner, local); err != nil {
		var zero T
		return zero, err
	}
	return buf[0], nil
}

// WriteElemErr is WriteElem with fault recovery and typed errors.
func WriteElemErr[T any](t *Thread, s *Shared[T], i int, v T) error {
	owner, local := s.Owner(i), s.LocalIndex(i)
	t.xlateAccess(s.id, i/s.block)
	if t.Castable(owner) {
		t.MemStreamFrom(int64(s.elemBytes), t.rt.places[owner].Socket)
		s.segs[owner][local] = v
		return nil
	}
	return PutTErr(t, s, owner, local, []T{v})
}

package upc

import (
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
)

// faultCfg is testCfg plus a fault schedule: 8 threads on 2 nodes so that
// thread i and thread i+4 always talk across the network.
func faultCfg(sched *fault.Schedule) Config {
	cfg := testCfg(8, 4, Processes, true)
	cfg.Faults = sched
	return cfg
}

// TestRetryRecoversFromDropWindow drives a blocking put through a window
// in which every cross-node message is dropped. The put must time out,
// back off, re-issue, and finally land once the window closes — all in
// virtual time, with the data intact.
func TestRetryRecoversFromDropWindow(t *testing.T) {
	sched := &fault.Schedule{Actions: []fault.Action{
		{Op: fault.OpDrop, At: 0, Until: 0.002, Prob: 1, Src: -1, Dst: -1},
	}}
	var landedAt sim.Time
	_, err := Run(faultCfg(sched), func(th *Thread) {
		s := Alloc[int](th, 8, 8, 1)
		if th.ID == 0 {
			if err := PutTErr(th, s, 4, 0, []int{42}); err != nil {
				t.Errorf("PutTErr under drop window: %v", err)
			}
			landedAt = th.Now()
		}
		th.Barrier()
		if th.ID == 4 && s.Local(th)[0] != 42 {
			t.Errorf("payload = %d, want 42", s.Local(th)[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Recovery cannot complete before the drop window closes: landing
	// earlier would mean the dropped attempt was silently delivered.
	if landedAt < sim.Time(2*sim.Millisecond) {
		t.Errorf("put completed at %v, inside the total-drop window", landedAt)
	}
}

// TestCrashRetireSurvivorsFinish crashes node 1 mid-run. Its threads must
// detect the failure and retire; the survivors on node 0 must keep
// passing barriers and get typed ErrNodeDown errors for sends toward the
// dead node.
func TestCrashRetireSurvivorsFinish(t *testing.T) {
	sched := &fault.Schedule{Actions: []fault.Action{
		{Op: fault.OpCrash, At: 0.001, Node: 1, Src: -1, Dst: -1},
	}}
	const rounds = 5
	done := make([]int, 8)
	var deadPeerErr error
	_, err := Run(faultCfg(sched), func(th *Thread) {
		s := Alloc[int](th, 8, 8, 1)
		for r := 0; r < rounds; r++ {
			th.P.Advance(500 * sim.Microsecond)
			if th.Failed() {
				th.Retire()
				return
			}
			if err := th.BarrierErr(); err != nil {
				t.Errorf("thread %d round %d barrier: %v", th.ID, r, err)
				return
			}
			done[th.ID]++
		}
		if th.ID == 0 {
			// Node 1 is long dead: the put must fail fast and typed.
			deadPeerErr = PutTErr(th, s, 4, 0, []int{1})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 4; id++ {
		if done[id] != rounds {
			t.Errorf("survivor %d finished %d/%d rounds", id, done[id], rounds)
		}
	}
	for id := 4; id < 8; id++ {
		if done[id] >= rounds {
			t.Errorf("thread %d on crashed node finished all rounds", id)
		}
	}
	if !errors.Is(deadPeerErr, fault.ErrNodeDown) {
		t.Errorf("put to dead node: err = %v, want ErrNodeDown", deadPeerErr)
	}
	var ce *fault.CommError
	if !errors.As(deadPeerErr, &ce) {
		t.Fatalf("put to dead node: err %T is not *fault.CommError", deadPeerErr)
	}
	if ce.Op != "put" || ce.Dst != 4 {
		t.Errorf("CommError = %+v, want Op=put Dst=4", ce)
	}
}

// TestRetireReleasesCollective: threads retire between two collectives;
// the survivors' second reduction completes and combines only their
// contributions.
func TestRetireReleasesCollective(t *testing.T) {
	sched := &fault.Schedule{Actions: []fault.Action{
		{Op: fault.OpCrash, At: 0.001, Node: 1, Src: -1, Dst: -1},
	}}
	sums := make([]int64, 8)
	_, err := Run(faultCfg(sched), func(th *Thread) {
		if got := AllReduceSumInt(th, int64(th.ID)); got != 28 {
			t.Errorf("thread %d pre-crash sum = %d, want 28", th.ID, got)
		}
		th.P.Advance(2 * sim.Millisecond)
		if th.Failed() {
			th.Retire()
			return
		}
		sums[th.ID] = AllReduceSumInt(th, int64(th.ID))
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 4; id++ {
		if sums[id] != 0+1+2+3 {
			t.Errorf("survivor %d post-crash sum = %d, want 6", id, sums[id])
		}
	}
}

// TestBarrierErrTimesOut: a peer that never arrives (and never retires)
// must not hang BarrierErr — the deadline ladder runs dry and returns a
// typed timeout.
func TestBarrierErrTimesOut(t *testing.T) {
	// The schedule only has to exist to arm failure detection; its one
	// rule activates long after the test is over.
	sched := &fault.Schedule{Actions: []fault.Action{
		{Op: fault.OpDrop, At: 30, Prob: 0.5, Src: -1, Dst: -1},
	}}
	cfg := testCfg(2, 1, Processes, true)
	cfg.Faults = sched
	var barErr error
	_, err := Run(cfg, func(th *Thread) {
		//upcvet:collalign -- deliberate no-show exercising the barrier timeout ladder
		if th.ID == 1 {
			th.P.Advance(20 * sim.Second) // never shows up
			return
		}
		barErr = th.BarrierErr()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(barErr, fault.ErrTimeout) {
		t.Errorf("barrier against absent peer: err = %v, want ErrTimeout", barErr)
	}
	var ce *fault.CommError
	if !errors.As(barErr, &ce) || ce.Op != "barrier" {
		t.Errorf("barrier error = %#v, want CommError{Op: barrier}", barErr)
	}
}

// TestTryLockDeadHome: a lock homed on a crashed node is unacquirable,
// and the probe reports failure instead of waiting on a dead home.
func TestTryLockDeadHome(t *testing.T) {
	sched := &fault.Schedule{Actions: []fault.Action{
		{Op: fault.OpCrash, At: 0.001, Node: 1, Src: -1, Dst: -1},
	}}
	_, err := Run(faultCfg(sched), func(th *Thread) {
		l := AllocLock(th, 4) // homed on node 1
		th.P.Advance(2 * sim.Millisecond)
		if th.Failed() {
			th.Retire()
			return
		}
		if th.ID == 0 {
			if l.TryLock(th) {
				t.Error("TryLock succeeded on a lock homed on a dead node")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRangeErrorTyped: out-of-range accesses surface as *RangeError from
// the Err variants, and the legacy forms panic with the same value.
func TestRangeErrorTyped(t *testing.T) {
	_, err := Run(testCfg(2, 2, Processes, true), func(th *Thread) {
		s := Alloc[int](th, 4, 8, 2)
		buf := make([]int, 3)
		_, gerr := GetAsyncTErr(th, s, buf, 1, 0) // partition holds 2
		var re *RangeError
		if !errors.As(gerr, &re) {
			t.Fatalf("GetAsyncTErr = %v, want *RangeError", gerr)
		}
		if re.Op != "Get" || re.N != 3 || re.PartLen != 2 {
			t.Errorf("RangeError = %+v", re)
		}
		if th.ID == 0 {
			func() {
				defer func() {
					r := recover()
					if _, ok := r.(*RangeError); !ok {
						t.Errorf("legacy GetT panic = %v (%T), want *RangeError", r, r)
					}
				}()
				GetT(th, s, buf, 1, 0)
			}()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestChaosRunDeterministic: the same (seed, schedule) pair must produce
// the exact same virtual timeline, retries and all.
func TestChaosRunDeterministic(t *testing.T) {
	run := func() sim.Time {
		sched := &fault.Schedule{Actions: []fault.Action{
			{Op: fault.OpDrop, At: 0, Until: 0.01, Prob: 0.4, Src: -1, Dst: -1},
			{Op: fault.OpDelay, At: 0, Until: 0.01, Prob: 0.3, Extra: 0.0002, Src: -1, Dst: -1},
		}}
		st, err := Run(faultCfg(sched), func(th *Thread) {
			s := Alloc[int](th, 64, 8, 8)
			for r := 0; r < 4; r++ {
				peer := (th.ID + 4) % 8
				if err := PutTErr(th, s, peer, r, []int{th.ID*100 + r}); err != nil {
					t.Errorf("thread %d round %d: %v", th.ID, r, err)
				}
				if err := th.BarrierErr(); err != nil {
					t.Errorf("thread %d round %d barrier: %v", th.ID, r, err)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Time(st.Elapsed)
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed+schedule diverged: %v vs %v", a, b)
	}
}

// TestFaultFreePathUnchanged: a schedule whose rules never match must
// leave every thread's virtual timeline exactly what it is without a
// schedule — the zero-cost-when-disabled property at the virtual-time
// level. (Engine end time may differ: unfired timeout timers fire as
// no-ops after the procs finish.)
func TestFaultFreePathUnchanged(t *testing.T) {
	run := func(cfg Config) []sim.Time {
		ends := make([]sim.Time, 8)
		_, err := Run(cfg, func(th *Thread) {
			s := Alloc[int](th, 64, 8, 8)
			for r := 0; r < 4; r++ {
				PutT(th, s, (th.ID+4)%8, r, []int{th.ID})
				th.Barrier()
			}
			ends[th.ID] = th.Now()
		})
		if err != nil {
			t.Fatal(err)
		}
		return ends
	}
	plain := run(testCfg(8, 4, Processes, true))
	armed := run(faultCfg(&fault.Schedule{Actions: []fault.Action{
		// Active schedule whose rules never match: src filter names a
		// node that does not exist on the 2-node slice in use.
		{Op: fault.OpDrop, At: 0, Prob: 1, Src: 63, Dst: -1},
	}}))
	for id := range plain {
		if plain[id] != armed[id] {
			t.Errorf("thread %d: armed-but-idle schedule moved finish %v -> %v",
				id, plain[id], armed[id])
		}
	}
}

package upc

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topo"
)

// ForAll is upc_forall with pointer affinity: every thread calls it with
// the same bounds, and body(i) runs on the thread with affinity to s's
// element i. The iteration itself is local control flow (no cost beyond
// the body's own charges).
func ForAll[T any](t *Thread, s *Shared[T], lo, hi int, body func(i int)) {
	if lo < 0 || hi > s.n {
		panic(fmt.Sprintf("upc: ForAll [%d,%d) outside array of %d", lo, hi, s.n))
	}
	for i := lo; i < hi; i++ {
		if s.Owner(i) == t.ID {
			body(i)
		}
	}
}

// ForAllStride is upc_forall with integer affinity: body(i) runs on
// thread i%THREADS.
func ForAllStride(t *Thread, lo, hi int, body func(i int)) {
	for i := lo; i < hi; i++ {
		if i%t.N == t.ID {
			body(i)
		}
	}
}

// ---- Array collectives (the upc_all_* data-movement library) ----

// BroadcastT copies n elements from root's partition (starting at rootOff)
// into every thread's partition at dstOff (upc_all_broadcast over a
// binomial tree: log2(nodes) rounds of bulk puts plus intra-node copies).
func BroadcastT[T any](t *Thread, s *Shared[T], root, rootOff, dstOff, n int) {
	checkRange(s.PartLen(t.ID), dstOff, n, "BroadcastT")
	t.Barrier()
	// Data really moves once: the root's values land everywhere. Cost is
	// charged as the tree the collective library would use.
	if t.ID == root {
		// Snapshot the source: the root's own destination may overlap it.
		src := append([]T(nil), s.segs[root][rootOff:rootOff+n]...)
		for th := 0; th < t.N; th++ {
			copy(s.segs[th][dstOff:dstOff+n], src)
		}
	}
	t.chargeTreeCollective(int64(n) * int64(s.elemBytes))
	t.Barrier()
}

// ScatterT distributes consecutive n-element chunks of root's partition:
// thread i receives root's chunk [rootOff+i*n, rootOff+(i+1)*n) at dstOff
// (upc_all_scatter).
func ScatterT[T any](t *Thread, s *Shared[T], root, rootOff, dstOff, n int) {
	checkRange(s.PartLen(t.ID), dstOff, n, "ScatterT")
	checkRange(s.PartLen(root), rootOff, n*t.N, "ScatterT(root)")
	t.Barrier()
	if t.ID == root {
		for th := 0; th < t.N; th++ {
			copy(s.segs[th][dstOff:dstOff+n],
				s.segs[root][rootOff+th*n:rootOff+(th+1)*n])
		}
	}
	t.chargeTreeCollective(int64(n) * int64(s.elemBytes))
	t.Barrier()
}

// GatherT collects each thread's n elements at srcOff into root's
// partition at rootOff, ordered by thread id (upc_all_gather).
func GatherT[T any](t *Thread, s *Shared[T], root, rootOff, srcOff, n int) {
	checkRange(s.PartLen(t.ID), srcOff, n, "GatherT")
	checkRange(s.PartLen(root), rootOff, n*t.N, "GatherT(root)")
	t.Barrier()
	if t.ID == root {
		for th := 0; th < t.N; th++ {
			copy(s.segs[root][rootOff+th*n:rootOff+(th+1)*n],
				s.segs[th][srcOff:srcOff+n])
		}
	}
	t.chargeTreeCollective(int64(n) * int64(s.elemBytes))
	t.Barrier()
}

// chargeTreeCollective charges one binomial-tree data collective of the
// given payload per round.
func (t *Thread) chargeTreeCollective(bytes int64) {
	t.P.Advance(t.rt.collCost(bytes))
}

// ---- Atomics (the bupc_atomic extension) ----

// AtomicI64 is a shared 64-bit integer with atomic read-modify-write
// operations executed at its home thread. Remote callers pay a control
// round trip; same-node callers under shared memory pay a cache-line
// ping.
type AtomicI64 struct {
	rt    *Runtime
	home  int
	value int64
}

// AllocAtomicI64 collectively creates an atomic counter homed on the
// given thread with an initial value.
func AllocAtomicI64(t *Thread, home int, initial int64) *AtomicI64 {
	if home < 0 || home >= t.N {
		panic(fmt.Sprintf("upc: AllocAtomicI64 home %d of %d", home, t.N))
	}
	t.Barrier()
	rec := t.rt.allocRecord(t.allocSeq, 1, 8, home+1, func() any {
		return &AtomicI64{rt: t.rt, home: home, value: initial}
	})
	t.allocSeq++
	a, ok := rec.(*AtomicI64)
	if !ok {
		panic("upc: collective Alloc type mismatch (expected AtomicI64)")
	}
	t.Barrier()
	return a
}

// rtt charges the round trip to the atomic's home.
func (a *AtomicI64) rtt(t *Thread) {
	cond := &a.rt.Cluster.Conduit
	switch {
	case t.ID == a.home:
		t.P.Advance(60 * sim.Nanosecond)
	case t.Distance(a.home) != topo.LevelRemote && a.rt.Cfg.sharedMem():
		t.P.Advance(400 * sim.Nanosecond) // cache-line ping-pong
	default:
		t.P.Advance(2 * (cond.SendOverhead + cond.MsgGap + cond.Latency))
	}
}

// Load atomically reads the value (one-way fetch cost).
func (a *AtomicI64) Load(t *Thread) int64 {
	a.rtt(t)
	return a.value
}

// Add atomically adds delta and returns the new value
// (bupc_atomicI64_fetchadd + delta).
func (a *AtomicI64) Add(t *Thread, delta int64) int64 {
	a.rtt(t)
	a.value += delta
	return a.value
}

// CompareAndSwap atomically replaces old with new when equal, reporting
// success (bupc_atomicI64_cswap).
func (a *AtomicI64) CompareAndSwap(t *Thread, old, new int64) bool {
	a.rtt(t)
	if a.value != old {
		return false
	}
	a.value = new
	return true
}

// Store atomically writes the value.
func (a *AtomicI64) Store(t *Thread, v int64) {
	a.rtt(t)
	a.value = v
}

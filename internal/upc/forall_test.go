package upc

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/topo"
)

func TestForAllCoversEachElementOnce(t *testing.T) {
	counts := make([]int, 100)
	owners := make([]int, 100)
	_, err := Run(testCfg(4, 2, Processes, true), func(th *Thread) {
		s := Alloc[int](th, 100, 8, 7)
		ForAll(th, s, 0, 100, func(i int) {
			counts[i]++
			owners[i] = th.ID
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Errorf("element %d visited %d times", i, c)
		}
	}
	// Affinity: body ran on the owning thread.
	s := &Shared[int]{n: 100, elemBytes: 8, block: 7, segs: make([][]int, 4)}
	for i := range counts {
		if owners[i] != s.Owner(i) {
			t.Errorf("element %d ran on %d, owner is %d", i, owners[i], s.Owner(i))
		}
	}
}

func TestForAllStridePartitions(t *testing.T) {
	counts := make([]int, 64)
	_, err := Run(testCfg(4, 2, Processes, true), func(th *Thread) {
		ForAllStride(th, 0, 64, func(i int) {
			counts[i]++
			if i%th.N != th.ID {
				t.Errorf("element %d ran on thread %d", i, th.ID)
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Errorf("element %d visited %d times", i, c)
		}
	}
}

func TestBroadcastTArrayCollective(t *testing.T) {
	_, err := Run(testCfg(4, 2, Processes, true), func(th *Thread) {
		s := Alloc[float64](th, 64, 8, 16)
		if th.ID == 2 {
			for i := 0; i < 8; i++ {
				s.Local(th)[i] = float64(i) * 1.5
			}
		}
		BroadcastT(th, s, 2, 0, 4, 8)
		for i := 0; i < 8; i++ {
			if got := s.Local(th)[4+i]; got != float64(i)*1.5 {
				t.Errorf("thread %d: bcast[%d] = %g", th.ID, i, got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	_, err := Run(testCfg(4, 2, Processes, true), func(th *Thread) {
		s := Alloc[int32](th, 4*32, 4, 32)
		if th.ID == 0 {
			for i := 0; i < 16; i++ {
				s.Local(th)[8+i] = int32(100 + i)
			}
		}
		// Scatter 4-element chunks from thread 0's offset 8 to offset 0.
		ScatterT(th, s, 0, 8, 0, 4)
		for i := 0; i < 4; i++ {
			want := int32(100 + th.ID*4 + i)
			if got := s.Local(th)[i]; got != want {
				t.Errorf("thread %d: scatter[%d] = %d, want %d", th.ID, i, got, want)
			}
		}
		// Gather them back to thread 1 at offset 16.
		GatherT(th, s, 1, 16, 0, 4)
		if th.ID == 1 {
			for i := 0; i < 16; i++ {
				if got := s.Local(th)[16+i]; got != int32(100+i) {
					t.Errorf("gather[%d] = %d, want %d", i, got, 100+i)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectivesChargeTime(t *testing.T) {
	var spent sim.Duration
	_, err := Run(testCfg(4, 2, Processes, true), func(th *Thread) {
		s := Alloc[byte](th, 4*1024, 1, 1024)
		start := th.Now()
		BroadcastT(th, s, 0, 0, 0, 1024)
		if th.ID == 0 {
			spent = th.Now() - start
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if spent <= 0 {
		t.Error("array broadcast must charge virtual time")
	}
}

func TestAtomicAddAcrossThreads(t *testing.T) {
	var final int64
	_, err := Run(testCfg(8, 4, Processes, true), func(th *Thread) {
		a := AllocAtomicI64(th, 0, 100)
		th.Barrier()
		for i := 0; i < 10; i++ {
			a.Add(th, 1)
		}
		th.Barrier()
		final = a.Load(th)
	})
	if err != nil {
		t.Fatal(err)
	}
	if final != 180 {
		t.Errorf("atomic total = %d, want 180", final)
	}
}

func TestAtomicCASAndStore(t *testing.T) {
	_, err := Run(testCfg(2, 2, Processes, true), func(th *Thread) {
		a := AllocAtomicI64(th, 1, 5)
		th.Barrier()
		if th.ID == 0 {
			if !a.CompareAndSwap(th, 5, 9) {
				t.Error("CAS(5->9) on value 5 must succeed")
			}
			if a.CompareAndSwap(th, 5, 11) {
				t.Error("CAS(5->11) on value 9 must fail")
			}
			a.Store(th, 42)
		}
		th.Barrier()
		if got := a.Load(th); got != 42 {
			t.Errorf("final value %d, want 42", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAtomicRemoteCostsMoreThanHome(t *testing.T) {
	var homeCost, remoteCost sim.Duration
	_, err := Run(testCfg(4, 2, Processes, true), func(th *Thread) {
		a := AllocAtomicI64(th, 0, 0)
		th.Barrier()
		start := th.Now()
		a.Add(th, 1)
		d := th.Now() - start
		switch th.ID {
		case 0:
			homeCost = d
		case 2: // other node
			remoteCost = d
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if remoteCost <= homeCost {
		t.Errorf("remote atomic (%v) must cost more than home (%v)", remoteCost, homeCost)
	}
}

func TestPutBytesAndGetBytesModelTransfers(t *testing.T) {
	var putD, getD sim.Duration
	_, err := Run(testCfg(4, 2, Processes, true), func(th *Thread) {
		th.Barrier()
		if th.ID == 0 {
			start := th.Now()
			th.PutBytes(2, 1<<20) // remote node
			putD = th.Now() - start
			start = th.Now()
			th.GetBytes(2, 1<<20)
			getD = th.Now() - start
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	floor := sim.TransferTime(1<<20, 1.5e9)
	if putD < floor || getD < floor {
		t.Errorf("model transfers below bandwidth floor: put=%v get=%v floor=%v", putD, getD, floor)
	}
}

func TestApplyAsyncRunsHandlerAtDelivery(t *testing.T) {
	applied := false
	_, err := Run(testCfg(2, 1, Processes, true), func(th *Thread) {
		th.Barrier()
		if th.ID == 0 {
			h := ApplyAsync(th, 1, 4096, func() { applied = true })
			if applied {
				t.Error("handler must not run before delivery")
			}
			th.WaitSync(h)
			if !applied {
				t.Error("handler must have run by WaitSync return")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOnProcViewChargesToSubProc(t *testing.T) {
	// A view bound to another process must advance that process's clock,
	// not the master's.
	_, err := Run(testCfg(2, 1, Processes, true), func(th *Thread) {
		th.Barrier()
		if th.ID != 0 {
			return
		}
		done := &sim.Event{}
		var subElapsed sim.Duration
		masterStart := th.Now()
		th.P.Go("sub", func(p *sim.Proc) {
			v := th.OnProc(p, topo.Place{Node: th.Place.Node, Socket: th.Place.Socket, Core: 1})
			s0 := p.Now()
			v.PutBytes(1, 1<<20)
			subElapsed = p.Now() - s0
			done.Fire()
		})
		done.Wait(th.P)
		if subElapsed <= 0 {
			t.Error("sub-thread put charged no time")
		}
		// The master only waited; it must not have advanced beyond the
		// sub's completion (same instant).
		if th.Now()-masterStart != subElapsed {
			t.Errorf("master advanced %v, sub took %v", th.Now()-masterStart, subElapsed)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInternReturnsSingleton(t *testing.T) {
	_, err := Run(testCfg(4, 2, Processes, true), func(th *Thread) {
		v := th.Runtime().Intern("k", func() any { return new(int) })
		w := th.Runtime().Intern("k", func() any { return new(int) })
		if v != w {
			t.Error("Intern must return the same object for one key")
		}
		u := th.Runtime().Intern("k2", func() any { return new(int) })
		if u == v {
			t.Error("distinct keys must intern distinct objects")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPartitionMatchesLocal(t *testing.T) {
	_, err := Run(testCfg(4, 2, Processes, true), func(th *Thread) {
		s := Alloc[int](th, 32, 8, 8)
		s.Local(th)[0] = th.ID * 11
		th.Barrier()
		for p := 0; p < th.N; p++ {
			if got := s.Partition(p)[0]; got != p*11 {
				t.Errorf("Partition(%d)[0] = %d, want %d", p, got, p*11)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBlockedLayoutProperty(t *testing.T) {
	f := func(nRaw, thRaw uint8) bool {
		n := int(nRaw) + 1
		threads := int(thRaw)%16 + 1
		b := BlockedLayout(n, threads)
		// Every element fits in exactly one of `threads` blocks of size b.
		return b*threads >= n && (b-1)*threads < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHandleTryOnNilOp(t *testing.T) {
	h := &Handle{}
	if !h.Try() {
		t.Error("zero Handle must report complete")
	}
}

// Package upc implements a UPC-style PGAS language runtime on the
// simulated cluster fabric: SPMD thread launch (MYTHREAD/THREADS), a
// partitioned global address space with block-cyclic shared arrays,
// one-sided bulk copies (blocking and asynchronous with explicit
// synchronization handles), split-phase barriers, global locks,
// collectives, the Berkeley castability extension (pointer privatization),
// and the runtime thread-layout query. Two backend regimes mirror the
// Berkeley UPC options the thesis evaluates: process-based threads (one
// network connection each, optionally with inter-process shared memory —
// PSHM) and pthread-based threads (one shared connection per node, native
// shared memory).
package upc

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Backend selects how UPC language threads are realized.
type Backend int

const (
	// Processes runs each UPC thread as an OS process: one network
	// connection per thread; intra-node shared memory only via PSHM.
	Processes Backend = iota
	// Pthreads runs the node's UPC threads inside one process: they share
	// a single network connection and have native shared memory.
	Pthreads
)

// String names the backend.
func (b Backend) String() string {
	if b == Pthreads {
		return "pthreads"
	}
	return "processes"
}

// Config describes one SPMD execution.
type Config struct {
	Machine        *topo.Machine   // cluster model (required)
	Conduit        *fabric.Conduit // nil = machine's default conduit
	Threads        int             // THREADS
	ThreadsPerNode int             // blocked layout over nodes
	Backend        Backend
	PSHM           bool         // inter-process shared memory (Processes only)
	Binding        topo.Binding // intra-node placement policy
	Seed           int64        // engine seed
	// Tracer, when non-nil, receives the run's trace events in addition to
	// any process-default tracer (see internal/trace).
	Tracer trace.Tracer
	// Faults, when non-nil, is the deterministic fault schedule injected
	// into this run's fabric; nil falls back to the process-default
	// schedule installed by the -faults flag (see fault.SetDefault).
	Faults *fault.Schedule
	// Retry tunes the recovery of fault-aware communication calls; the
	// zero value selects fault.DefaultRetryPolicy. Only consulted when a
	// fault schedule is installed.
	Retry fault.RetryPolicy
	// Ckpt arms barrier-aligned checkpointing of registered shared arrays
	// and application state (see CkptConfig); the zero value disables it.
	Ckpt CkptConfig
}

// sharedMem reports whether two threads on the same node can address each
// other's shared segments directly (pthreads always; processes need PSHM).
func (c *Config) sharedMem() bool { return c.Backend == Pthreads || c.PSHM }

func (c *Config) conduit() (fabric.Conduit, error) {
	if c.Conduit != nil {
		return *c.Conduit, nil
	}
	cond, ok := fabric.ConduitByName(c.Machine.DefaultConduit)
	if !ok {
		return fabric.Conduit{}, fmt.Errorf("upc: machine %s names unknown conduit %q",
			c.Machine.Name, c.Machine.DefaultConduit)
	}
	return cond, nil
}

func (c *Config) validate() error {
	if c.Machine == nil {
		return fmt.Errorf("upc: Config.Machine is required")
	}
	if c.Threads <= 0 {
		return fmt.Errorf("upc: Threads = %d", c.Threads)
	}
	if c.ThreadsPerNode <= 0 {
		return fmt.Errorf("upc: ThreadsPerNode = %d", c.ThreadsPerNode)
	}
	return nil
}

// Runtime is the per-execution state shared by all UPC threads.
type Runtime struct {
	Cfg     Config
	Eng     *sim.Engine
	Cluster *fabric.Cluster

	threads []*Thread
	places  []topo.Place
	eps     []*fabric.Endpoint // per thread (may alias per node under Pthreads)

	nodesUsed int
	barCost   sim.Duration
	bar       *phaseBarrier
	// edges is true when the installed tracer opted into completion-edge
	// instants (trace.EdgeObserver); cached once so the hot paths pay a
	// single bool test.
	edges     bool
	allocs    []*sharedShape
	nextArray uint32 // shared-array ids for translation-cache keys
	xlate     xlateCosts
	colls     []*collSlot
	interned  map[string]any

	// Fault-injection state: inj is nil when the run has no fault
	// schedule, which keeps every hot path on its zero-cost branch.
	inj   *fault.Injector
	retry fault.RetryPolicy
	dead  []bool // threads retired after their node crashed
	nDead int
	// reviveQ parks threads awaiting their node's scheduled revival, one
	// queue per node, woken by the injector's transition observer.
	reviveQ []sim.WaitQueue

	// Checkpoint state (see ckpt.go): ckptEvery caches Cfg.Ckpt.Every so
	// the barrier path pays one integer test when disarmed.
	ckptEvery int64
	persist   []ckptObject
	ckptApps  []Checkpointer
	ckptStore []ckptRec
}

// Intern returns the runtime-scoped singleton for key, creating it with mk
// on first use. Extensions (thread groups, sub-thread pools) use it to
// share state among the UPC threads of one run without global registries.
// It must be called from simulation context.
func (rt *Runtime) Intern(key string, mk func() any) any {
	if rt.interned == nil {
		rt.interned = make(map[string]any)
	}
	v, ok := rt.interned[key]
	if !ok {
		v = mk()
		rt.interned[key] = v
	}
	return v
}

// Stats summarizes a completed SPMD run.
type Stats struct {
	// Elapsed is the virtual wall-clock of the whole run.
	Elapsed sim.Duration
	// Threads echoes the thread count.
	Threads int
}

// Run executes main as an SPMD program over cfg.Threads UPC threads and
// returns run statistics. It is the analogue of launching a compiled UPC
// binary with upcrun.
func Run(cfg Config, main func(t *Thread)) (Stats, error) {
	rt, err := NewRuntime(cfg)
	if err != nil {
		return Stats{}, err
	}
	rt.Start(main)
	if err := rt.Eng.Run(); err != nil {
		return Stats{}, err
	}
	return Stats{Elapsed: rt.Eng.Now(), Threads: cfg.Threads}, nil
}

// NewRuntime builds the runtime without launching threads, for callers
// that need to co-schedule other simulated activity on the same engine.
func NewRuntime(cfg Config) (*Runtime, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cond, err := cfg.conduit()
	if err != nil {
		return nil, err
	}
	places, err := cfg.Machine.Layout(cfg.Threads, cfg.ThreadsPerNode, cfg.Binding)
	if err != nil {
		return nil, err
	}
	eng := sim.New(cfg.Seed)
	if cfg.Tracer != nil {
		// The default tracer (if any) already saw this engine's KRunBegin
		// from sim.New; replay the boundary for the config-level sink.
		cfg.Tracer.Emit(trace.Event{Kind: trace.KRunBegin, Proc: trace.EngineProc,
			Cat: "sim", Name: "run", Arg: cfg.Seed})
		eng.SetTracer(trace.Tee(eng.Tracer(), cfg.Tracer))
	}
	cl := fabric.NewCluster(eng, cfg.Machine, cond)

	rt := &Runtime{
		Cfg:     cfg,
		Eng:     eng,
		Cluster: cl,
		places:  places,
		eps:     make([]*fabric.Endpoint, cfg.Threads),
		dead:    make([]bool, cfg.Threads),
	}
	rt.edges = trace.WantsEdge(eng.Tracer())
	sched := cfg.Faults
	if sched == nil {
		sched = fault.Default()
	}
	inj, err := fault.Install(cl, sched)
	if err != nil {
		return nil, err
	}
	rt.nodesUsed = (cfg.Threads + cfg.ThreadsPerNode - 1) / cfg.ThreadsPerNode
	if inj != nil {
		rt.inj = inj
		rt.retry = cfg.Retry.OrDefault()
		rt.reviveQ = make([]sim.WaitQueue, rt.nodesUsed)
		inj.OnTransition(func(node int, down bool) {
			if !down && node < len(rt.reviveQ) {
				rt.reviveQ[node].WakeAll()
			}
		})
	}
	rt.ckptEvery = cfg.Ckpt.Every
	if rt.ckptEvery < 0 {
		rt.ckptEvery = 0
	}
	if rt.ckptEvery > 0 {
		rt.ckptStore = make([]ckptRec, cfg.Threads)
		for i := range rt.ckptStore {
			rt.ckptStore[i].gen = -1
		}
		rt.ckptApps = make([]Checkpointer, cfg.Threads)
	}
	rt.barCost = cl.BarrierCost(rt.nodesUsed)
	rt.bar = newPhaseBarrier(cfg.Threads)
	m := cfg.Machine
	rt.xlate = xlateCosts{
		miss:   sim.FromSeconds(m.PtrXlate),
		hit:    sim.FromSeconds(m.PtrXlate * xlateHitFraction),
		assist: sim.FromSeconds(1 / (m.ClockGHz * 1e9)),
		cached: m.XlateCacheLines > 0,
		hw:     m.XlateAssist,
	}

	// Endpoints: one per thread under Processes; one per node, shared by
	// that node's threads, under Pthreads.
	if cfg.Backend == Pthreads {
		perNode := make([]*fabric.Endpoint, rt.nodesUsed)
		for i := range rt.eps {
			n := places[i].Node
			if perNode[n] == nil {
				perNode[n] = cl.MustEndpoint(n)
				perNode[n].MarkShared()
			}
			rt.eps[i] = perNode[n]
		}
	} else {
		for i := range rt.eps {
			rt.eps[i] = cl.MustEndpoint(places[i].Node)
		}
	}

	rt.threads = make([]*Thread, cfg.Threads)
	for i := 0; i < cfg.Threads; i++ {
		rt.threads[i] = &Thread{
			rt:    rt,
			ID:    i,
			N:     cfg.Threads,
			Place: places[i],
			ep:    rt.eps[i],
		}
	}
	return rt, nil
}

// Start launches every UPC thread on the engine; the caller must then run
// the engine (Run does both).
func (rt *Runtime) Start(main func(t *Thread)) {
	for _, t := range rt.threads {
		t := t
		rt.Eng.Go(fmt.Sprintf("upc%d", t.ID), func(p *sim.Proc) {
			t.P = p
			main(t)
			// Residual translation counters: threads that exit without a
			// final barrier (retired workers, early returns) still flush
			// their deltas, so trace-fed counter totals match XlateStats.
			t.flushXlateCounters()
		})
	}
}

// packSelf packs thread id's identity (thread and node on both ends)
// into a completion-edge Arg2 (see trace.CatEdge).
func (rt *Runtime) packSelf(id int) int64 {
	n := rt.places[id].Node
	return trace.PackEndpoints(id, id, n, n)
}

// Thread reports thread i's context (valid after NewRuntime).
func (rt *Runtime) Thread(i int) *Thread { return rt.threads[i] }

// NodesUsed reports how many cluster nodes the layout spans.
func (rt *Runtime) NodesUsed() int { return rt.nodesUsed }

// OnNodeTransition registers fn to run in engine context at every
// crash/revive transition of the installed fault schedule; a no-op
// without one. Applications use it to wake their own parked workers, so
// a crash is observed promptly even by threads idling on an app-level
// wait queue (the runtime's own revival parks are woken internally).
func (rt *Runtime) OnNodeTransition(fn func(node int, down bool)) {
	if rt.inj != nil {
		rt.inj.OnTransition(fn)
	}
}

// PlaceOf reports the hardware placement of thread i.
func (rt *Runtime) PlaceOf(i int) topo.Place { return rt.places[i] }

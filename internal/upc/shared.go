package upc

import "fmt"

// Shared is a block-cyclic shared array distributed across all UPC
// threads, the analogue of `shared [B] T A[N]`. Element i has affinity to
// thread (i/B) mod THREADS. Each thread's partition is backed by a real Go
// slice so application kernels operate on genuine data; virtual cost is
// charged by the transfer and charging APIs.
type Shared[T any] struct {
	rt        *Runtime
	id        uint32 // runtime-unique, keys the translation cache
	n         int    // total elements
	elemBytes int
	block     int   // elements per block (layout qualifier)
	segs      [][]T // per-thread partitions
}

// sharedShape is the untyped allocation record used to make Alloc
// collective: the k-th allocation of every thread resolves to one object.
type sharedShape struct {
	obj       any
	n         int
	elemBytes int
	block     int
}

// BlockedLayout returns the block size of a pure blocked (`[*]`) layout of
// n elements over threads: ceil(n/threads).
func BlockedLayout(n, threads int) int {
	return (n + threads - 1) / threads
}

// Alloc collectively allocates a shared array of n elements with the given
// per-element byte size and block size (upc_all_alloc). Every thread must
// call it with identical arguments; it synchronizes like a barrier and
// returns the same array on all threads. blockSize <= 0 selects the
// blocked `[*]` layout.
func Alloc[T any](t *Thread, n, elemBytes, blockSize int) *Shared[T] {
	if n <= 0 || elemBytes <= 0 {
		panic(fmt.Sprintf("upc: Alloc(n=%d, elemBytes=%d)", n, elemBytes))
	}
	if blockSize <= 0 {
		blockSize = BlockedLayout(n, t.N)
	}
	t.Barrier()
	rec := t.rt.allocRecord(t.allocSeq, n, elemBytes, blockSize, func() any {
		t.rt.nextArray++
		s := &Shared[T]{rt: t.rt, id: t.rt.nextArray, n: n, elemBytes: elemBytes, block: blockSize}
		s.segs = make([][]T, t.N)
		for th := 0; th < t.N; th++ {
			s.segs[th] = make([]T, s.PartLen(th))
		}
		return s
	})
	t.allocSeq++
	s, ok := rec.(*Shared[T])
	if !ok {
		panic(fmt.Sprintf("upc: collective Alloc type mismatch at call %d", t.allocSeq-1))
	}
	t.Barrier()
	return s
}

// allocRecord resolves the idx-th collective allocation, creating it on
// first arrival and verifying shape agreement afterwards.
func (rt *Runtime) allocRecord(idx, n, elemBytes, block int, mk func() any) any {
	for len(rt.allocs) <= idx {
		rt.allocs = append(rt.allocs, nil)
	}
	if rt.allocs[idx] == nil {
		rt.allocs[idx] = &sharedShape{obj: mk(), n: n, elemBytes: elemBytes, block: block}
	}
	rec := rt.allocs[idx]
	if rec.n != n || rec.elemBytes != elemBytes || rec.block != block {
		panic(fmt.Sprintf("upc: collective Alloc argument mismatch at call %d: (%d,%d,%d) vs (%d,%d,%d)",
			idx, n, elemBytes, block, rec.n, rec.elemBytes, rec.block))
	}
	return rec.obj
}

// N reports the total element count.
func (s *Shared[T]) N() int { return s.n }

// Block reports the layout block size.
func (s *Shared[T]) Block() int { return s.block }

// ElemBytes reports the per-element size used for cost accounting.
func (s *Shared[T]) ElemBytes() int { return s.elemBytes }

// Owner reports the thread with affinity to element i.
func (s *Shared[T]) Owner(i int) int {
	return (i / s.block) % len(s.segs)
}

// LocalIndex maps global element i to its index within Owner(i)'s
// partition.
func (s *Shared[T]) LocalIndex(i int) int {
	blockNum := i / s.block
	localBlock := blockNum / len(s.segs)
	return localBlock*s.block + i%s.block
}

// GlobalIndex is the inverse of (Owner, LocalIndex): it maps a thread and
// local index back to the global element index.
func (s *Shared[T]) GlobalIndex(owner, local int) int {
	localBlock := local / s.block
	return (localBlock*len(s.segs)+owner)*s.block + local%s.block
}

// PartLen reports the number of elements with affinity to thread th.
func (s *Shared[T]) PartLen(th int) int {
	t := len(s.segs)
	if t == 0 { // during construction
		t = s.rt.Cfg.Threads
	}
	cycle := s.block * t
	full := s.n / cycle
	rem := s.n % cycle
	extra := rem - th*s.block
	if extra < 0 {
		extra = 0
	}
	if extra > s.block {
		extra = s.block
	}
	return full*s.block + extra
}

// Persist registers the array with the barrier-aligned checkpoint
// layer: every checkpointed generation snapshots each thread's blocks
// into its buddy replica, and Rejoin restores them. Every thread calls
// it (like Alloc); registration dedups. No-op when Config.Ckpt is
// disarmed.
func (s *Shared[T]) Persist(t *Thread) { t.rt.persistObj(s) }

// ckptSave implements ckptObject: a deep copy of thread th's partition
// plus its modeled byte volume.
func (s *Shared[T]) ckptSave(th int) (any, int64) {
	snap := append([]T(nil), s.segs[th]...)
	return snap, int64(len(snap) * s.elemBytes)
}

// ckptRestore implements ckptObject: reinstall thread th's partition
// from a snapshot taken by ckptSave.
func (s *Shared[T]) ckptRestore(th int, snap any) {
	copy(s.segs[th], snap.([]T))
}

// Partition returns owner's backing slice regardless of castability. It
// exists for verification code and delivery-time handlers (everything is
// one address space in the simulation); modeled computation must go
// through Local, Cast, or the transfer APIs so costs are charged.
func (s *Shared[T]) Partition(owner int) []T { return s.segs[owner] }

// Local returns this thread's own partition for direct computation.
func (s *Shared[T]) Local(t *Thread) []T { return s.segs[t.ID] }

// Cast privatizes a pointer to owner's partition (bupc_cast): it returns
// the partition as a directly usable slice when the segment is castable
// from t, or nil otherwise. The query itself is free — the runtime
// establishes the memory maps at startup.
func (s *Shared[T]) Cast(t *Thread, owner int) []T {
	if !t.Castable(owner) {
		return nil
	}
	return s.segs[owner]
}

// ---- Bulk one-sided operations (upc_memput / upc_memget family) ----
//
// The bulk operations are package functions because Go methods cannot
// introduce type parameters.

// PutT copies src into owner's partition at local offset off, blocking
// until remote completion (upc_memput).
func PutT[T any](t *Thread, s *Shared[T], owner, off int, src []T) {
	h := PutAsyncT(t, s, owner, off, src)
	t.WaitSync(h)
	t.remoteAck(owner)
}

// PutAsyncT is the non-blocking form of PutT (upc_memput_async): the data
// is snapshotted at initiation and lands in the target partition when the
// returned handle completes. It panics with the typed error PutAsyncTErr
// would return.
func PutAsyncT[T any](t *Thread, s *Shared[T], owner, off int, src []T) *Handle {
	h, err := PutAsyncTErr(t, s, owner, off, src)
	if err != nil {
		panic(err)
	}
	return h
}

// GetT copies length elements from owner's partition at local offset off
// into dst, blocking until the data has arrived (upc_memget).
func GetT[T any](t *Thread, s *Shared[T], dst []T, owner, off int) {
	h := GetAsyncT(t, s, dst, owner, off)
	t.WaitSync(h)
}

// GetAsyncT is the non-blocking form of GetT; the source is read at
// completion time and copied into dst. It panics with the typed error
// GetAsyncTErr would return.
func GetAsyncT[T any](t *Thread, s *Shared[T], dst []T, owner, off int) *Handle {
	h, err := GetAsyncTErr(t, s, dst, owner, off)
	if err != nil {
		panic(err)
	}
	return h
}

// ReadElem performs a fine-grained shared read of global element i,
// charging one pointer translation plus the access path (direct memory
// when castable; a network get otherwise). It panics with the typed
// error ReadElemErr would return.
func ReadElem[T any](t *Thread, s *Shared[T], i int) T {
	v, err := ReadElemErr(t, s, i)
	if err != nil {
		panic(err)
	}
	return v
}

// WriteElem performs a fine-grained shared write of global element i. It
// panics with the typed error WriteElemErr would return.
func WriteElem[T any](t *Thread, s *Shared[T], i int, v T) {
	if err := WriteElemErr(t, s, i, v); err != nil {
		panic(err)
	}
}

func checkRange(partLen, off, n int, op string) {
	if err := checkRangeErr(partLen, off, n, op); err != nil {
		panic(err)
	}
}

// CopyT copies n elements between two shared locations (upc_memcpy):
// from srcOwner's partition of src at srcOff into dstOwner's partition of
// dst at dstOff. When the caller owns neither side (a third-party copy)
// the data is staged through the caller, as the Berkeley runtime does: a
// get from the source followed by a put to the destination.
func CopyT[T any](t *Thread, dst *Shared[T], dstOwner, dstOff int,
	src *Shared[T], srcOwner, srcOff, n int) {
	checkRange(len(src.segs[srcOwner]), srcOff, n, "Copy(src)")
	checkRange(len(dst.segs[dstOwner]), dstOff, n, "Copy(dst)")
	switch {
	case srcOwner == t.ID:
		PutT(t, dst, dstOwner, dstOff, src.segs[srcOwner][srcOff:srcOff+n])
	case dstOwner == t.ID:
		GetT(t, src, dst.segs[dstOwner][dstOff:dstOff+n], srcOwner, srcOff)
	default:
		buf := make([]T, n)
		GetT(t, src, buf, srcOwner, srcOff)
		//upcvet:sharedrace -- one switch arm runs per call; both arms write the same caller-chosen dstOwner/dstOff span
		PutT(t, dst, dstOwner, dstOff, buf)
	}
}

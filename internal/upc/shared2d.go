package upc

import "fmt"

// Shared2D is a two-dimensional shared array distributed over a Cartesian
// pr×pc processor grid — the multi-dimensional blocking the thesis's
// conclusions point to as the natural companion of hierarchical
// parallelism (Nishtala et al.'s Cartesian layouts / Barton et al.'s
// multi-dimensional blocking; an extension beyond the UPC 1.2 layouts of
// the paper's own experiments). Thread (gr, gc) of the grid owns the
// contiguous tile rows [gr·tileR, (gr+1)·tileR) × cols [gc·tileC,
// (gc+1)·tileC), stored row-major.
type Shared2D[T any] struct {
	rt           *Runtime
	rows, cols   int
	pr, pc       int // processor grid shape (pr*pc == THREADS)
	tileR, tileC int
	elemBytes    int
	segs         [][]T // per-thread tiles
}

// Alloc2D collectively allocates a rows×cols array over a pr×pc thread
// grid. pr*pc must equal THREADS and the dimensions must divide evenly.
func Alloc2D[T any](t *Thread, rows, cols, pr, pc, elemBytes int) *Shared2D[T] {
	if pr*pc != t.N {
		panic(fmt.Sprintf("upc: Alloc2D grid %dx%d != THREADS %d", pr, pc, t.N))
	}
	if rows <= 0 || cols <= 0 || rows%pr != 0 || cols%pc != 0 {
		panic(fmt.Sprintf("upc: Alloc2D %dx%d does not tile over %dx%d", rows, cols, pr, pc))
	}
	t.Barrier()
	// Encode the 2D shape into the collective record (block field carries
	// the packed grid shape for the mismatch check).
	rec := t.rt.allocRecord(t.allocSeq, rows*cols, elemBytes, pr*65536+pc, func() any {
		s := &Shared2D[T]{
			rt: t.rt, rows: rows, cols: cols, pr: pr, pc: pc,
			tileR: rows / pr, tileC: cols / pc, elemBytes: elemBytes,
		}
		s.segs = make([][]T, t.N)
		for th := range s.segs {
			s.segs[th] = make([]T, s.tileR*s.tileC)
		}
		return s
	})
	t.allocSeq++
	s, ok := rec.(*Shared2D[T])
	if !ok {
		panic("upc: collective Alloc type mismatch (expected Shared2D)")
	}
	t.Barrier()
	return s
}

// Dims reports the global shape.
func (s *Shared2D[T]) Dims() (rows, cols int) { return s.rows, s.cols }

// Grid reports the processor grid shape.
func (s *Shared2D[T]) Grid() (pr, pc int) { return s.pr, s.pc }

// TileDims reports each thread's tile shape.
func (s *Shared2D[T]) TileDims() (tr, tc int) { return s.tileR, s.tileC }

// OwnerOf reports the thread owning global element (r, c).
func (s *Shared2D[T]) OwnerOf(r, c int) int {
	return (r/s.tileR)*s.pc + c/s.tileC
}

// GridCoord reports thread th's (row, col) position in the grid.
func (s *Shared2D[T]) GridCoord(th int) (gr, gc int) { return th / s.pc, th % s.pc }

// LocalOf maps global (r, c) to the owner's row-major tile index.
func (s *Shared2D[T]) LocalOf(r, c int) int {
	return (r%s.tileR)*s.tileC + c%s.tileC
}

// Tile returns this thread's tile (row-major tileR×tileC).
func (s *Shared2D[T]) Tile(t *Thread) []T { return s.segs[t.ID] }

// Persist registers the array with the barrier-aligned checkpoint
// layer, like Shared.Persist.
func (s *Shared2D[T]) Persist(t *Thread) { t.rt.persistObj(s) }

// ckptSave implements ckptObject: a deep copy of thread th's tile.
func (s *Shared2D[T]) ckptSave(th int) (any, int64) {
	snap := append([]T(nil), s.segs[th]...)
	return snap, int64(len(snap) * s.elemBytes)
}

// ckptRestore implements ckptObject.
func (s *Shared2D[T]) ckptRestore(th int, snap any) {
	copy(s.segs[th], snap.([]T))
}

// CastTile privatizes owner's tile when castable, as Shared.Cast.
func (s *Shared2D[T]) CastTile(t *Thread, owner int) []T {
	if !t.Castable(owner) {
		return nil
	}
	return s.segs[owner]
}

// RowNeighbor reports the thread to the given grid-column offset on this
// thread's grid row (wrapping), for systolic algorithms.
func (s *Shared2D[T]) RowNeighbor(t *Thread, d int) int {
	gr, gc := s.GridCoord(t.ID)
	return gr*s.pc + ((gc+d)%s.pc+s.pc)%s.pc
}

// ColNeighbor reports the thread at the given grid-row offset in this
// thread's grid column (wrapping).
func (s *Shared2D[T]) ColNeighbor(t *Thread, d int) int {
	gr, gc := s.GridCoord(t.ID)
	return (((gr+d)%s.pr+s.pr)%s.pr)*s.pc + gc
}

func (s *Shared2D[T]) checkRect(r0, c0, h, w int, op string) {
	if r0 < 0 || c0 < 0 || h <= 0 || w <= 0 || r0+h > s.tileR || c0+w > s.tileC {
		panic(fmt.Sprintf("upc: %s rect (%d,%d)+%dx%d outside %dx%d tile",
			op, r0, c0, h, w, s.tileR, s.tileC))
	}
}

// PutRect writes an h×w rectangle (row-major in src) into owner's tile at
// tile-local (r0, c0), blocking. A full-width rectangle moves as one
// contiguous transfer; otherwise each row is one strided message, as
// upc_memcpy on a strided region would issue.
func PutRect[T any](t *Thread, s *Shared2D[T], owner, r0, c0, h, w int, src []T) {
	s.checkRect(r0, c0, h, w, "PutRect")
	if len(src) != h*w {
		panic(fmt.Sprintf("upc: PutRect src %d != %dx%d", len(src), h, w))
	}
	snap := append([]T(nil), src...)
	dst := s.segs[owner]
	if w == s.tileC && c0 == 0 {
		op := t.putBytes(owner, int64(h*w*s.elemBytes), func() {
			copy(dst[r0*s.tileC:(r0+h)*s.tileC], snap)
		})
		(&Handle{op: op}).waitPut(t, owner)
		return
	}
	handles := make([]*Handle, 0, h)
	for i := 0; i < h; i++ {
		i := i
		op := t.putBytes(owner, int64(w*s.elemBytes), func() {
			copy(dst[(r0+i)*s.tileC+c0:(r0+i)*s.tileC+c0+w], snap[i*w:(i+1)*w])
		})
		handles = append(handles, &Handle{op: op})
	}
	t.WaitAll(handles)
	t.remoteAck(owner)
}

// waitPut completes a single blocking put with its remote acknowledgement.
func (h *Handle) waitPut(t *Thread, owner int) {
	t.WaitSync(h)
	t.remoteAck(owner)
}

// GetRect reads an h×w rectangle from owner's tile at tile-local (r0, c0)
// into dst (row-major), blocking.
func GetRect[T any](t *Thread, s *Shared2D[T], dst []T, owner, r0, c0, h, w int) {
	s.checkRect(r0, c0, h, w, "GetRect")
	if len(dst) != h*w {
		panic(fmt.Sprintf("upc: GetRect dst %d != %dx%d", len(dst), h, w))
	}
	src := s.segs[owner]
	if w == s.tileC && c0 == 0 {
		op := t.getBytes(owner, int64(h*w*s.elemBytes), func() {
			copy(dst, src[r0*s.tileC:(r0+h)*s.tileC])
		})
		op.WaitRemote(t.P)
		op.Release()
		return
	}
	handles := make([]*Handle, 0, h)
	for i := 0; i < h; i++ {
		i := i
		op := t.getBytes(owner, int64(w*s.elemBytes), func() {
			copy(dst[i*w:(i+1)*w], src[(r0+i)*s.tileC+c0:(r0+i)*s.tileC+c0+w])
		})
		handles = append(handles, &Handle{op: op})
	}
	t.WaitAll(handles)
}

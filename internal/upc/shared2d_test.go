package upc

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestAlloc2DShapeAndOwnership(t *testing.T) {
	_, err := Run(testCfg(6, 3, Processes, true), func(th *Thread) {
		s := Alloc2D[float64](th, 12, 18, 2, 3, 8)
		if r, c := s.Dims(); r != 12 || c != 18 {
			t.Errorf("dims %dx%d", r, c)
		}
		if tr, tc := s.TileDims(); tr != 6 || tc != 6 {
			t.Errorf("tile %dx%d, want 6x6", tr, tc)
		}
		// Ownership follows the Cartesian grid.
		if s.OwnerOf(0, 0) != 0 || s.OwnerOf(0, 17) != 2 ||
			s.OwnerOf(11, 0) != 3 || s.OwnerOf(11, 17) != 5 {
			t.Error("corner ownership wrong")
		}
		gr, gc := s.GridCoord(4)
		if gr != 1 || gc != 1 {
			t.Errorf("GridCoord(4) = (%d,%d)", gr, gc)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOwnerLocalRoundTrip2D(t *testing.T) {
	f := func(rRaw, cRaw uint8) bool {
		s := &Shared2D[int]{rows: 12, cols: 18, pr: 2, pc: 3, tileR: 6, tileC: 6}
		r := int(rRaw) % 12
		c := int(cRaw) % 18
		owner := s.OwnerOf(r, c)
		local := s.LocalOf(r, c)
		gr, gc := s.GridCoord(owner)
		// Reconstruct global coordinates from owner + local index.
		rr := gr*s.tileR + local/s.tileC
		cc := gc*s.tileC + local%s.tileC
		return rr == r && cc == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPutGetRectContiguousAndStrided(t *testing.T) {
	_, err := Run(testCfg(4, 2, Processes, true), func(th *Thread) {
		s := Alloc2D[int32](th, 16, 16, 2, 2, 4)
		th.Barrier()
		if th.ID == 0 {
			// Full-width rectangle into thread 3's tile (contiguous path).
			full := make([]int32, 2*8)
			for i := range full {
				full[i] = int32(1000 + i)
			}
			PutRect(th, s, 3, 1, 0, 2, 8, full)
			// Narrow strided rectangle into thread 1's tile.
			narrow := []int32{7, 8, 9, 17, 18, 19}
			PutRect(th, s, 1, 2, 3, 2, 3, narrow)
		}
		th.Barrier()
		if th.ID == 3 {
			got := make([]int32, 2*8)
			GetRect(th, s, got, 3, 1, 0, 2, 8)
			for i := range got {
				if got[i] != int32(1000+i) {
					t.Fatalf("contiguous rect [%d] = %d", i, got[i])
				}
			}
		}
		if th.ID == 2 { // read thread 1's strided rect remotely
			got := make([]int32, 6)
			GetRect(th, s, got, 1, 2, 3, 2, 3)
			want := []int32{7, 8, 9, 17, 18, 19}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("strided rect [%d] = %d, want %d", i, got[i], want[i])
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStridedRectCostsMoreThanContiguous(t *testing.T) {
	var contig, strided sim.Duration
	_, err := Run(testCfg(2, 1, Processes, true), func(th *Thread) {
		s := Alloc2D[float64](th, 256, 256, 2, 1, 8)
		th.Barrier()
		if th.ID == 0 {
			buf := make([]float64, 64*64)
			start := th.Now()
			PutRect(th, s, 1, 0, 0, 16, 256, buf[:16*256]) // full width: one message
			contig = th.Now() - start
			start = th.Now()
			PutRect(th, s, 1, 0, 0, 64, 64, buf) // 64 strided messages
			strided = th.Now() - start
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if strided <= contig {
		t.Errorf("64 strided rows (%v) must cost more than one contiguous block (%v) of equal bytes",
			strided, contig)
	}
}

func TestNeighborsWrap(t *testing.T) {
	_, err := Run(testCfg(6, 3, Processes, true), func(th *Thread) {
		s := Alloc2D[int](th, 6, 6, 2, 3, 8)
		if th.ID == 5 { // grid (1,2)
			if got := s.RowNeighbor(th, 1); got != 3 { // wraps to (1,0)
				t.Errorf("RowNeighbor(+1) = %d, want 3", got)
			}
			if got := s.ColNeighbor(th, 1); got != 2 { // wraps to (0,2)
				t.Errorf("ColNeighbor(+1) = %d, want 2", got)
			}
			if got := s.RowNeighbor(th, -1); got != 4 {
				t.Errorf("RowNeighbor(-1) = %d, want 4", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlloc2DValidation(t *testing.T) {
	mustPanic := func(name string, fn func(th *Thread)) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		Run(testCfg(4, 2, Processes, true), func(th *Thread) { fn(th) })
	}
	mustPanic("grid mismatch", func(th *Thread) { Alloc2D[int](th, 8, 8, 3, 2, 8) })
	mustPanic("untileable", func(th *Thread) { Alloc2D[int](th, 9, 8, 2, 2, 8) })
	mustPanic("bad rect", func(th *Thread) {
		s := Alloc2D[int](th, 8, 8, 2, 2, 8)
		PutRect(th, s, 0, 3, 3, 4, 4, make([]int, 16))
	})
}

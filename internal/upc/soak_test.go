package upc

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/topo"
)

// TestRandomTrafficSoak drives a randomized mixture of blocking and
// asynchronous puts and gets across backends and checks every byte against
// a shadow model. Each (writer, owner) pair has a private slot in the
// owner's partition, so concurrent one-sided writes never race.
func TestRandomTrafficSoak(t *testing.T) {
	f := func(seed int64, backendRaw, pshmRaw uint8) bool {
		backend := Processes
		if backendRaw%2 == 1 {
			backend = Pthreads
		}
		const threads, perNode, slot = 6, 3, 64
		cfg := Config{
			Machine:        topo.Lehman(),
			Threads:        threads,
			ThreadsPerNode: perNode,
			Backend:        backend,
			PSHM:           pshmRaw%2 == 0,
			Seed:           seed,
		}
		ok := true
		_, err := Run(cfg, func(th *Thread) {
			// Partition layout: one slot per writer.
			s := Alloc[int64](th, threads*threads*slot, 8, threads*slot)
			th.Barrier()
			rng := th.Runtime().Eng.Rand()
			var pending []*Handle
			shadow := make([][]int64, threads) // what this thread wrote to each owner
			for dst := range shadow {
				shadow[dst] = make([]int64, slot)
			}
			for op := 0; op < 40; op++ {
				dst := rng.Intn(threads)
				off := rng.Intn(slot - 4)
				n := 1 + rng.Intn(4)
				vals := make([]int64, n)
				for i := range vals {
					v := int64(th.ID)<<40 | int64(op)<<16 | int64(i)
					vals[i] = v
					shadow[dst][off+i] = v
				}
				base := th.ID*slot + off
				if rng.Intn(2) == 0 {
					PutT(th, s, dst, base, vals)
				} else {
					pending = append(pending, PutAsyncT(th, s, dst, base, vals))
				}
				if rng.Intn(4) == 0 {
					// Interleave a get of our own slot at some owner.
					buf := make([]int64, slot)
					GetT(th, s, buf, dst, th.ID*slot)
				}
			}
			th.WaitAll(pending)
			th.Barrier()
			// Verify everything this thread wrote.
			for dst := 0; dst < threads; dst++ {
				buf := make([]int64, slot)
				GetT(th, s, buf, dst, th.ID*slot)
				for i, want := range shadow[dst] {
					if buf[i] != want {
						ok = false
					}
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestManyArraysAndLocksSoak interleaves collective allocations of
// different shapes with lock-protected counters.
func TestManyArraysAndLocksSoak(t *testing.T) {
	total := 0
	_, err := Run(testCfg(6, 3, Processes, true), func(th *Thread) {
		arrays := make([]*Shared[int], 5)
		locks := make([]*Lock, 3)
		for i := range arrays {
			arrays[i] = Alloc[int](th, 30*(i+1), 8, i+1)
		}
		for i := range locks {
			locks[i] = AllocLock(th, i%th.N)
		}
		for round := 0; round < 4; round++ {
			l := locks[round%len(locks)]
			l.Lock(th)
			total++
			l.Unlock(th)
			a := arrays[round%len(arrays)]
			WriteElem(th, a, th.ID, th.ID*round)
		}
		th.Barrier()
		for i, a := range arrays {
			if a.N() != 30*(i+1) {
				t.Errorf("array %d shape drifted", i)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 24 {
		t.Errorf("lock-protected increments = %d, want 24", total)
	}
}

// TestGetAsyncReadsAtCompletion pins down the documented semantics: an
// asynchronous get observes the source at delivery time, not initiation.
func TestGetAsyncReadsAtCompletion(t *testing.T) {
	_, err := Run(testCfg(2, 1, Processes, true), func(th *Thread) {
		s := Alloc[int32](th, 2, 4, 1)
		if th.ID == 1 {
			s.Local(th)[0] = 7
		}
		th.Barrier()
		if th.ID == 0 {
			buf := make([]int32, 1)
			h := GetAsyncT(th, s, buf, 1, 0)
			// The owner flips the value while the get is in flight; the
			// one-sided read is unordered with respect to it, so either
			// value is legal — but it must be one of them.
			th.WaitSync(h)
			if buf[0] != 7 && buf[0] != 9 {
				t.Errorf("async get observed %d", buf[0])
			}
		} else {
			th.P.Advance(1) // flip mid-flight
			//upcvet:sharedrace -- deliberate in-flight race; the test asserts either outcome is legal
			s.Local(th)[0] = 9
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBackendsComputeIdenticalData runs the same deterministic program on
// all three runtime regimes and requires identical final data (timing
// differs; values must not).
func TestBackendsComputeIdenticalData(t *testing.T) {
	run := func(b Backend, pshm bool) []float64 {
		out := make([]float64, 32)
		_, err := Run(testCfg(4, 2, b, pshm), func(th *Thread) {
			s := Alloc[float64](th, 32, 8, 8)
			for i := range s.Local(th) {
				s.Local(th)[i] = float64(th.ID*100 + i)
			}
			th.Barrier()
			peer := (th.ID + 1) % th.N
			buf := make([]float64, 8)
			GetT(th, s, buf, peer, 0)
			for i := range buf {
				buf[i] *= 2
			}
			PutT(th, s, peer, 0, buf)
			th.Barrier()
			copy(out[th.ID*8:], s.Local(th))
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a := run(Processes, false)
	b := run(Processes, true)
	c := run(Pthreads, false)
	if fmt.Sprint(a) != fmt.Sprint(b) || fmt.Sprint(b) != fmt.Sprint(c) {
		t.Error("backends must compute identical data")
	}
}

func TestCopyTAllRoutings(t *testing.T) {
	_, err := Run(testCfg(4, 2, Processes, true), func(th *Thread) {
		a := Alloc[int64](th, 32, 8, 8)
		b := Alloc[int64](th, 32, 8, 8)
		for i := range a.Local(th) {
			a.Local(th)[i] = int64(th.ID*1000 + i)
		}
		th.Barrier()
		if th.ID == 0 {
			// Source-local: my partition of a -> thread 1's b.
			CopyT(th, b, 1, 0, a, 0, 0, 8)
			// Destination-local: thread 2's a -> my b.
			CopyT(th, b, 0, 0, a, 2, 0, 8)
			// Third party: thread 3's a -> thread 1's b (staged here).
			CopyT(th, b, 1, 0, a, 3, 0, 4)
		}
		th.Barrier()
		if th.ID == 1 {
			loc := b.Local(th)
			for i := 0; i < 4; i++ {
				if loc[i] != int64(3000+i) {
					t.Errorf("third-party copy[%d] = %d, want %d", i, loc[i], 3000+i)
				}
			}
			for i := 4; i < 8; i++ {
				if loc[i] != int64(i) {
					t.Errorf("source-local copy[%d] = %d, want %d", i, loc[i], i)
				}
			}
		}
		if th.ID == 0 {
			for i := 0; i < 8; i++ {
				if b.Local(th)[i] != int64(2000+i) {
					t.Errorf("dest-local copy[%d] = %d", i, b.Local(th)[i])
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCopyTThirdPartyCostsTwoLegs(t *testing.T) {
	var direct, thirdParty sim.Duration
	_, err := Run(testCfg(6, 2, Processes, true), func(th *Thread) {
		a := Alloc[byte](th, 6*4096, 1, 4096)
		b := Alloc[byte](th, 6*4096, 1, 4096)
		th.Barrier()
		if th.ID == 0 {
			start := th.Now()
			CopyT(th, b, 2, 0, a, 0, 0, 4096) // one leg (source local, remote dst)
			direct = th.Now() - start
			start = th.Now()
			CopyT(th, b, 4, 0, a, 2, 0, 4096) // two legs through the caller
			thirdParty = th.Now() - start
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if thirdParty < direct+direct/2 {
		t.Errorf("third-party copy (%v) should cost ~2 legs vs direct (%v)", thirdParty, direct)
	}
}

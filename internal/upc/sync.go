package upc

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// phaseBarrier implements both upc_barrier and the split-phase
// upc_notify/upc_wait pair: each generation is a sim.Event that fires the
// dissemination cost after the last notify. Under fault injection a
// generation releases when every *live* thread has arrived, so a node
// crash does not hang the survivors (retiring threads re-check pending
// generations; see Thread.Retire).
type phaseBarrier struct {
	n        int
	notified int
	seq      int64  // generation sequence number (completion-edge labels)
	inGen    []bool // which threads notified this generation (faults only)
	ev       *sim.Event
}

func newPhaseBarrier(n int) *phaseBarrier {
	return &phaseBarrier{n: n, inGen: make([]bool, n), ev: &sim.Event{}} //upcvet:poolalloc -- runtime construction, once per SPMD run
}

// notify registers thread id's arrival and returns the generation's
// release event. The last live arrival books the release and opens the
// next generation.
func (b *phaseBarrier) notify(rt *Runtime, id int) *sim.Event {
	ev := b.ev
	b.notified++
	if rt.edges {
		rt.threads[id].P.TraceInstant(trace.CatEdge, trace.EdgeBarArrive,
			"barrier", b.seq, rt.packSelf(id))
	}
	if !rt.faultsOn() {
		// Fast path: no per-thread bookkeeping, a bare counter.
		if b.notified == b.n {
			b.release(rt, id)
		}
		return ev
	}
	b.inGen[id] = true
	b.maybeRelease(rt, id)
	return ev
}

// maybeRelease fires the generation once every live thread has notified.
// Called on each arrival and again when a thread retires mid-generation,
// which may be exactly what completes it; id is the thread whose arrival
// or retirement triggered the check.
func (b *phaseBarrier) maybeRelease(rt *Runtime, id int) {
	if b.notified == 0 {
		return
	}
	for i := range b.inGen {
		if !rt.dead[i] && !b.inGen[i] {
			return
		}
	}
	b.release(rt, id)
}

// release fires the current generation after the dissemination cost and
// opens the next one. id is the last arriver (or the retiring thread
// whose departure completed the generation) — the thread the release
// edge blames for every other waiter's delay.
func (b *phaseBarrier) release(rt *Runtime, id int) {
	ev := b.ev
	b.notified = 0
	for i := range b.inGen {
		b.inGen[i] = false
	}
	if rt.edges {
		rt.threads[id].P.TraceInstant(trace.CatEdge, trace.EdgeBarRelease,
			"barrier", b.seq, rt.packSelf(id))
	}
	b.seq++
	b.ev = &sim.Event{} //upcvet:poolalloc -- one event per barrier generation, amortized over THREADS waiters
	rt.Eng.After(rt.barCost, ev.Fire)
}

// Lock is a UPC global lock (upc_lock_t). It has a home thread; acquiring
// it from another node pays a control round trip to the home, contended
// acquisitions queue FIFO at the home, and the grant pays the return
// latency.
type Lock struct {
	rt   *Runtime
	home int
	held bool
	// lastHolder is the thread whose Unlock most recently took effect, or
	// -1 before the first release — the thread a contended acquisition's
	// lock-grant edge blames.
	lastHolder int
	q          sim.WaitQueue
}

// AllocLock collectively creates a lock homed on the given thread
// (upc_all_lock_alloc with explicit affinity).
func AllocLock(t *Thread, home int) *Lock {
	if home < 0 || home >= t.N {
		panic(fmt.Sprintf("upc: AllocLock home %d of %d threads", home, t.N))
	}
	t.Barrier()
	rec := t.rt.allocRecord(t.allocSeq, 1, 1, home+1, func() any {
		return &Lock{rt: t.rt, home: home, lastHolder: -1}
	})
	t.allocSeq++
	l, ok := rec.(*Lock)
	if !ok {
		panic("upc: collective Alloc type mismatch (expected Lock)")
	}
	t.Barrier()
	return l
}

// Home reports the lock's home thread.
func (l *Lock) Home() int { return l.home }

// controlCost charges the one-way control-message cost between t and the
// lock's home.
func (l *Lock) controlCost(t *Thread) {
	homePlace := l.rt.places[l.home]
	cond := &l.rt.Cluster.Conduit
	if t.ID == l.home {
		t.P.Advance(100 * sim.Nanosecond)
	} else if topo.SameNode(t.Place, homePlace) && l.rt.Cfg.sharedMem() {
		t.P.Advance(200 * sim.Nanosecond) // cache-line ping within the node
	} else {
		t.P.Advance(cond.SendOverhead + cond.MsgGap + cond.Latency)
	}
}

// Lock acquires the lock (upc_lock), blocking while it is held. The
// acquisition is traced as an "upc/lock" span from request to grant.
func (l *Lock) Lock(t *Thread) {
	end := t.P.TraceSpanArg("upc", "lock", "", int64(l.home))
	l.controlCost(t) // request travels to the home
	waited := false
	for l.held {
		waited = true
		l.q.Wait(t.P, "upc-lock")
	}
	l.held = true
	if l.rt.edges && waited && l.lastHolder >= 0 {
		t.P.TraceInstant(trace.CatEdge, trace.EdgeLockGrant, "", int64(l.home),
			trace.PackEndpoints(l.lastHolder, t.ID,
				l.rt.places[l.lastHolder].Node, t.Place.Node))
	}
	l.controlCost(t) // grant travels back
	end()
}

// TryLock attempts acquisition without blocking (upc_lock_attempt),
// reporting success. The probe pays the control round trip either way.
// Under fault injection a lock whose home node is down is unacquirable:
// the probe fails immediately (the control message would be dropped).
func (l *Lock) TryLock(t *Thread) bool {
	if t.rt.faultsOn() && !t.Alive(l.home) {
		t.P.TraceInstant("upc", "trylock", "dead-home", int64(l.home), 0)
		return false
	}
	l.controlCost(t)
	if l.held {
		l.controlCost(t)
		t.P.TraceInstant("upc", "trylock", "busy", int64(l.home), 0)
		return false
	}
	l.held = true
	l.controlCost(t)
	t.P.TraceInstant("upc", "trylock", "ok", int64(l.home), 0)
	return true
}

// Unlock releases the lock (upc_unlock). The release takes effect at the
// home after the one-way control cost; the releaser does not wait for it.
func (l *Lock) Unlock(t *Thread) {
	homePlace := l.rt.places[l.home]
	cond := &l.rt.Cluster.Conduit
	var oneWay sim.Duration
	switch {
	case t.ID == l.home:
		oneWay = 100 * sim.Nanosecond
	case topo.SameNode(t.Place, homePlace) && l.rt.Cfg.sharedMem():
		oneWay = 200 * sim.Nanosecond
	default:
		oneWay = cond.SendOverhead + cond.MsgGap + cond.Latency
	}
	t.P.Advance(cond.SendOverhead / 2) // local injection cost
	t.P.TraceInstant("upc", "unlock", "", int64(l.home), 0)
	tid := t.ID
	l.rt.Eng.After(oneWay, func() {
		l.held = false
		l.lastHolder = tid
		l.q.WakeOne()
	})
}

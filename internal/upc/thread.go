package upc

import (
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Per-operation software overheads of the intra-node shared-memory paths,
// calibrated so that PSHM and pthreads bulk copies match the manually cast
// load/store path to within the noise the paper reports in Figure 3.4.
const (
	pshmOverhead    = 250 * sim.Nanosecond // mmap-crossed segment copy setup
	pthreadOverhead = 150 * sim.Nanosecond // same-address-space copy setup
	castOverhead    = 60 * sim.Nanosecond  // plain memcpy through a cast pointer
)

// Thread is one UPC language thread's execution context (MYTHREAD). Its
// methods may only be called from the thread's own simulated process.
type Thread struct {
	rt *Runtime
	P  *sim.Proc

	ID    int // MYTHREAD
	N     int // THREADS
	Place topo.Place
	ep    *fabric.Endpoint

	pendingBar *sim.Event
	allocSeq   int
	collSeq    int
	xl         xlateState // shared-pointer translation accounting
}

// Runtime reports the owning runtime.
func (t *Thread) Runtime() *Runtime { return t.rt }

// OnProc returns a view of this UPC thread bound to a different simulated
// process and hardware place — the identity a sub-thread assumes when it
// issues UPC operations on behalf of its master (the thesis's
// UPC/sub-threads interoperability). The view shares the master's network
// endpoint, identity and shared-heap access; costs are charged to the
// sub-thread's process and place. Views must not be used for barriers or
// collective allocation (those belong to the master's SPMD control flow).
func (t *Thread) OnProc(p *sim.Proc, place topo.Place) *Thread {
	v := *t
	v.P = p
	v.Place = place
	v.pendingBar = nil
	return &v
}

// Now reports the current virtual time.
func (t *Thread) Now() sim.Time { return t.P.Now() }

// ---- Thread-layout queries (the Berkeley runtime extension) ----

// SameNodeThreads lists the UPC thread ids that share this thread's node —
// the information bupc_thread_distance exposes, used to build thread
// groups.
func (t *Thread) SameNodeThreads() []int {
	return topo.SameNodeRanks(t.ID, t.N, t.rt.Cfg.ThreadsPerNode)
}

// Distance reports the topological distance to another UPC thread.
func (t *Thread) Distance(other int) topo.Level {
	return topo.Distance(t.Place, t.rt.places[other])
}

// Castable reports whether other's shared segment can be privatized into a
// direct pointer on this thread (the bupc_cast extension): true for self
// always, and for same-node threads when shared memory is available
// (pthreads backend or PSHM).
func (t *Thread) Castable(other int) bool {
	if other == t.ID {
		return true
	}
	return topo.SameNode(t.Place, t.rt.places[other]) && t.rt.Cfg.sharedMem()
}

// ---- Synchronization ----

// Barrier executes upc_barrier: all THREADS threads rendezvous; the
// release is charged the dissemination cost across the nodes in use.
// When Config.Ckpt arms checkpointing, the selected generations double
// as coordinated checkpoint lines (see ckpt.go); split-phase barriers
// never checkpoint.
func (t *Thread) Barrier() {
	t.flushXlateCounters()
	end := t.P.TraceSpan("upc", "barrier")
	gen := t.rt.bar.seq
	ev := t.rt.bar.notify(t.rt, t.ID)
	ev.Wait(t.P)
	end()
	t.maybeCkpt(gen)
}

// BarrierNotify begins a split-phase barrier (upc_notify).
func (t *Thread) BarrierNotify() {
	if t.pendingBar != nil {
		panic("upc: BarrierNotify without matching BarrierWait")
	}
	t.flushXlateCounters()
	t.P.TraceInstant("upc", "barrier-notify", "", 0, 0)
	t.pendingBar = t.rt.bar.notify(t.rt, t.ID)
}

// BarrierWait completes a split-phase barrier (upc_wait).
func (t *Thread) BarrierWait() {
	if t.pendingBar == nil {
		panic("upc: BarrierWait without BarrierNotify")
	}
	ev := t.pendingBar
	t.pendingBar = nil
	end := t.P.TraceSpan("upc", "barrier-wait")
	ev.Wait(t.P)
	end()
}

// ---- Cost-charging helpers for real computation ----
//
// Application kernels execute real Go code on the shared data and charge
// its virtual cost through these helpers (the run-real/charge-model
// pattern described in DESIGN.md).

// Compute charges seconds of core-bound work at this thread's place,
// contending with SMT siblings on the same core.
func (t *Thread) Compute(seconds float64) {
	t.rt.Cluster.Compute(t.P, t.Place, seconds)
}

// MemStream charges streaming access of the given bytes against this
// thread's socket memory controller (data homed where it was first
// touched: the thread's own socket).
func (t *Thread) MemStream(bytes int64) {
	t.rt.Cluster.MemTouch(t.P, t.Place, t.Place.Socket, bytes)
}

// MemStreamFrom charges streaming access whose backing memory lives on
// homeSocket of this node — cross-socket traffic pays the NUMA factor.
func (t *Thread) MemStreamFrom(bytes int64, homeSocket int) {
	t.rt.Cluster.MemTouch(t.P, t.Place, homeSocket, bytes)
}

// ChargeXlate charges n shared-pointer translations (the per-access
// overhead Table 3.1 shows dominating un-cast UPC shared access) in
// bulk. Hardware-assisted machines retire each decode in one cycle;
// otherwise every bulk translation pays the full software decode — the
// translation cache only serves the fine-grained element path, where
// repeated hits on one block are observable per access.
func (t *Thread) ChargeXlate(n int64) {
	if n <= 0 {
		return
	}
	t.xl.accesses += n
	if t.rt.xlate.hw {
		t.P.Advance(sim.FromSeconds(float64(n) / (t.rt.Cfg.Machine.ClockGHz * 1e9)))
		return
	}
	t.xl.misses += n
	t.P.Advance(sim.FromSeconds(float64(n) * t.rt.Cfg.Machine.PtrXlate))
}

// ---- One-sided bulk transfer plumbing ----

// Handle identifies an outstanding asynchronous one-sided operation
// (the bupc_handle_t of the Berkeley extensions).
type Handle struct {
	op *fabric.NetOp

	// Retry context, armed when the op was issued on a network path under
	// an installed fault schedule (see armRetry): WaitSync then recovers
	// lost messages by re-issuing. All nil/zero on fault-free runs.
	t       *Thread
	opName  string
	peer    int
	bytes   int64
	reissue func() *fabric.NetOp
	// Issue-time incarnations of both endpoint nodes: an op that
	// straddles a reincarnation of either end is stale and must not be
	// retried into the new life (fault.ErrStaleEpoch).
	srcInc, dstInc int64
}

// Try reports whether the operation has completed, without blocking.
func (h *Handle) Try() bool { return h.op == nil || h.op.Remote.Fired() }

// HandleFor wraps a raw fabric operation as a UPC handle, for extensions
// that issue fabric transfers directly (e.g. the manual cast+memcpy path
// of the Figure 3.4 study).
func HandleFor(op *fabric.NetOp) *Handle { return &Handle{op: op} }

// WaitSync blocks until the asynchronous operation completes
// (upc_waitsync), recovering lost messages on retry-armed handles. It
// panics with the typed error WaitSyncErr would return.
func (t *Thread) WaitSync(h *Handle) {
	if err := t.WaitSyncErr(h); err != nil {
		panic(err)
	}
}

// WaitAll completes a batch of handles.
func (t *Thread) WaitAll(hs []*Handle) {
	for _, h := range hs {
		t.WaitSync(h)
	}
}

// ApplyAsync ships a payload of the given byte volume toward dst and runs
// apply when it is delivered — an active-message-style one-sided
// operation (the mechanism behind GASNet medium AMs, used e.g. for
// software-aggregated updates). apply executes in engine context and must
// not block.
func ApplyAsync(t *Thread, dst int, bytes int64, apply func()) *Handle {
	t.P.TraceInstant("upc", "am", "", bytes, int64(dst))
	return &Handle{op: t.putBytes(dst, bytes, apply)}
}

// PutBytes performs a one-sided put of the given byte volume toward
// thread dst without carrying a payload — the model-mode transfer used by
// benchmark geometries too large to materialize. Blocking, like PutT. It
// panics with the typed error PutBytesErr would return.
func (t *Thread) PutBytes(dst int, bytes int64) {
	if err := t.PutBytesErr(dst, bytes); err != nil {
		panic(err)
	}
}

// PutBytesAsync is the non-blocking form of PutBytes.
func (t *Thread) PutBytesAsync(dst int, bytes int64) *Handle {
	h, err := t.putBytesAsyncErr(dst, bytes, nil)
	if err != nil {
		panic(err)
	}
	return h
}

// GetBytes performs a one-sided get of the given byte volume from thread
// src without carrying a payload. Blocking, like GetT. It panics with
// the typed error GetBytesErr would return.
func (t *Thread) GetBytes(src int, bytes int64) {
	if err := t.GetBytesErr(src, bytes); err != nil {
		panic(err)
	}
}

// pathClass reports the comm-matrix class of a transfer between this
// thread and peer — the path putBytes/getBytes will take.
func (t *Thread) pathClass(peer int) string {
	switch {
	case peer == t.ID:
		return trace.ClassSelf
	case !topo.SameNode(t.Place, t.rt.places[peer]):
		return trace.ClassNetwork
	case t.rt.Cfg.sharedMem():
		return trace.ClassPSHM
	default:
		return trace.ClassLoopback
	}
}

// traceComm emits one communication-matrix instant for a transfer whose
// data flows from thread `from` to thread `to` (see trace.CatComm). The
// packing work is skipped entirely on the untraced fast path.
func (t *Thread) traceComm(op string, from, to int, bytes int64, class string) {
	if !t.rt.Eng.Tracing() {
		return
	}
	t.P.TraceInstant(trace.CatComm, op, class, bytes,
		trace.PackEndpoints(from, to, t.rt.places[from].Node, t.rt.places[to].Node))
}

// putBytes moves bytes toward thread dst and applies the payload closure
// at completion. It picks the path the configured runtime would use:
// direct shared-memory copy (pthreads / PSHM) on one node, the network
// loopback for same-node without shared memory, or the conduit remotely.
func (t *Thread) putBytes(dst int, bytes int64, apply func()) *fabric.NetOp {
	rt := t.rt
	dstPlace := rt.places[dst]
	t.traceComm("put", t.ID, dst, bytes, t.pathClass(dst))
	if dst == t.ID {
		return t.localCopy(t.Place, dstPlace, bytes, castOverhead, apply)
	}
	if topo.SameNode(t.Place, dstPlace) && rt.Cfg.sharedMem() {
		return t.localCopy(t.Place, dstPlace, bytes, t.shmOverhead(), apply)
	}
	return t.ep.PutAsync(t.P, rt.eps[dst], bytes, t.fenceApply(dst, bytes, apply))
}

// getBytes moves bytes from thread src toward this thread, applying the
// payload closure at completion.
func (t *Thread) getBytes(src int, bytes int64, apply func()) *fabric.NetOp {
	rt := t.rt
	srcPlace := rt.places[src]
	t.traceComm("get", src, t.ID, bytes, t.pathClass(src))
	if src == t.ID {
		return t.localCopy(srcPlace, t.Place, bytes, castOverhead, apply)
	}
	if topo.SameNode(t.Place, srcPlace) && rt.Cfg.sharedMem() {
		return t.localCopy(srcPlace, t.Place, bytes, t.shmOverhead(), apply)
	}
	return t.ep.GetAsync(t.P, rt.eps[src], bytes, t.fenceApply(src, bytes, apply))
}

// localCopy is MemCopyAsync on a placement pair the caller's path
// selection already proved same-node; the cross-node error is
// unreachable.
func (t *Thread) localCopy(from, to topo.Place, bytes int64, overhead sim.Duration, apply func()) *fabric.NetOp {
	op, err := t.rt.Cluster.MemCopyAsync(t.P, from, to, bytes, overhead, apply)
	if err != nil {
		panic(err)
	}
	return op
}

func (t *Thread) shmOverhead() sim.Duration {
	if t.rt.Cfg.Backend == Pthreads {
		return pthreadOverhead
	}
	return pshmOverhead
}

// remoteAck charges the completion acknowledgement a blocking put pays
// when the target is off-node.
func (t *Thread) remoteAck(dst int) {
	if !topo.SameNode(t.Place, t.rt.places[dst]) {
		t.P.Advance(t.rt.Cluster.Conduit.Latency)
	}
}

package upc

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/topo"
)

func testCfg(threads, perNode int, backend Backend, pshm bool) Config {
	return Config{
		Machine:        topo.Lehman(),
		Threads:        threads,
		ThreadsPerNode: perNode,
		Backend:        backend,
		PSHM:           pshm,
		Seed:           1,
	}
}

func TestSPMDIdentity(t *testing.T) {
	seen := make([]bool, 8)
	st, err := Run(testCfg(8, 4, Processes, true), func(th *Thread) {
		if th.N != 8 {
			t.Errorf("THREADS = %d, want 8", th.N)
		}
		if seen[th.ID] {
			t.Errorf("duplicate MYTHREAD %d", th.ID)
		}
		seen[th.ID] = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Threads != 8 {
		t.Errorf("stats threads = %d", st.Threads)
	}
	for i, s := range seen {
		if !s {
			t.Errorf("thread %d never ran", i)
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	var maxArrive, minRelease sim.Time
	minRelease = 1 << 60
	_, err := Run(testCfg(4, 2, Processes, true), func(th *Thread) {
		th.P.Advance(sim.Duration(th.ID) * sim.Millisecond)
		if th.Now() > maxArrive {
			maxArrive = th.Now()
		}
		th.Barrier()
		if th.Now() < minRelease {
			minRelease = th.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if minRelease < maxArrive {
		t.Errorf("barrier released at %v before last arrival %v", minRelease, maxArrive)
	}
	if minRelease == maxArrive {
		t.Error("barrier must charge a nonzero dissemination cost")
	}
}

func TestSplitPhaseBarrierOverlaps(t *testing.T) {
	// A thread that does 1ms of local work between notify and wait should
	// finish no later than notify-time + max(work, barrier wait).
	var full, split sim.Duration
	_, err := Run(testCfg(4, 2, Processes, true), func(th *Thread) {
		start := th.Now()
		th.Barrier()
		th.Compute(0.001)
		full = th.Now() - start

		start = th.Now()
		th.BarrierNotify()
		th.Compute(0.001) // overlapped with barrier propagation
		th.BarrierWait()
		split = th.Now() - start
	})
	if err != nil {
		t.Fatal(err)
	}
	if split > full {
		t.Errorf("split-phase (%v) should not exceed barrier-then-compute (%v)", split, full)
	}
}

func TestBarrierWaitWithoutNotifyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(testCfg(1, 1, Processes, true), func(th *Thread) { th.BarrierWait() })
}

func TestLayoutMathProperties(t *testing.T) {
	// Owner/LocalIndex <-> GlobalIndex is a bijection and partitions sum
	// to N, for arbitrary (n, block, threads).
	f := func(nRaw, blockRaw, thRaw uint8) bool {
		threads := int(thRaw)%7 + 1
		n := int(nRaw)%200 + 1
		block := int(blockRaw)%10 + 1
		s := &Shared[int]{n: n, elemBytes: 8, block: block, segs: make([][]int, threads)}
		for th := range s.segs {
			s.segs[th] = make([]int, s.PartLen(th))
		}
		sum := 0
		for th := 0; th < threads; th++ {
			sum += s.PartLen(th)
		}
		if sum != n {
			return false
		}
		for i := 0; i < n; i++ {
			o, l := s.Owner(i), s.LocalIndex(i)
			if o < 0 || o >= threads || l < 0 || l >= s.PartLen(o) {
				return false
			}
			if s.GlobalIndex(o, l) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAllocCollectiveAndData(t *testing.T) {
	_, err := Run(testCfg(4, 2, Processes, true), func(th *Thread) {
		s := Alloc[float64](th, 64, 8, 4)
		if s.N() != 64 || s.Block() != 4 {
			t.Errorf("alloc shape wrong: n=%d block=%d", s.N(), s.Block())
		}
		loc := s.Local(th)
		if len(loc) != s.PartLen(th.ID) {
			t.Errorf("thread %d local len %d, want %d", th.ID, len(loc), s.PartLen(th.ID))
		}
		for i := range loc {
			loc[i] = float64(th.ID*1000 + i)
		}
		th.Barrier()
		// Every thread reads element 0 of thread (ID+1)%N via Get.
		peer := (th.ID + 1) % th.N
		buf := make([]float64, 2)
		GetT(th, s, buf, peer, 0)
		if buf[0] != float64(peer*1000) || buf[1] != float64(peer*1000+1) {
			t.Errorf("thread %d got %v from peer %d", th.ID, buf, peer)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutMovesDataAndCharges(t *testing.T) {
	var localCost, remoteCost sim.Duration
	_, err := Run(testCfg(4, 2, Processes, true), func(th *Thread) {
		s := Alloc[int32](th, 4096, 4, 1024)
		th.Barrier()
		if th.ID == 0 {
			src := make([]int32, 1024)
			for i := range src {
				src[i] = int32(i)
			}
			start := th.Now()
			PutT(th, s, 1, 0, src) // same node (PSHM path)
			localCost = th.Now() - start
			start = th.Now()
			PutT(th, s, 2, 0, src) // remote node
			remoteCost = th.Now() - start
		}
		th.Barrier()
		if th.ID == 1 || th.ID == 2 {
			loc := s.Local(th)
			for i := 0; i < 1024; i++ {
				if loc[i] != int32(i) {
					t.Fatalf("thread %d: element %d = %d, want %d", th.ID, i, loc[i], i)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if remoteCost <= localCost {
		t.Errorf("remote put (%v) must cost more than same-node PSHM put (%v)", remoteCost, localCost)
	}
}

func TestPutAsyncOverlapsAndApexAtSync(t *testing.T) {
	_, err := Run(testCfg(2, 1, Processes, true), func(th *Thread) {
		s := Alloc[byte](th, 2<<20, 1, 1<<20)
		th.Barrier()
		if th.ID == 0 {
			src := make([]byte, 1<<20)
			for i := range src {
				src[i] = byte(i)
			}
			h := PutAsyncT(th, s, 1, 0, src)
			if h.Try() {
				t.Error("1MB put should not complete instantly")
			}
			// Mutating the source after initiation must not corrupt the
			// transfer (snapshot semantics).
			for i := range src {
				src[i] = 0xFF
			}
			th.Compute(0.0001)
			th.WaitSync(h)
			if !h.Try() {
				t.Error("handle must report complete after WaitSync")
			}
		}
		th.Barrier()
		if th.ID == 1 {
			loc := s.Local(th)
			for i := 0; i < 1<<20; i += 4097 {
				if loc[i] != byte(i) {
					t.Fatalf("async put corrupted: loc[%d] = %d, want %d", i, loc[i], byte(i))
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCastAvailability(t *testing.T) {
	cases := []struct {
		backend  Backend
		pshm     bool
		sameNode bool // expect castable to same-node peer
	}{
		{Processes, false, false},
		{Processes, true, true},
		{Pthreads, false, true},
	}
	for _, c := range cases {
		name := fmt.Sprintf("%v/pshm=%v", c.backend, c.pshm)
		_, err := Run(testCfg(4, 2, c.backend, c.pshm), func(th *Thread) {
			s := Alloc[float64](th, 16, 8, 4)
			th.Barrier()
			if got := s.Cast(th, th.ID) == nil; got {
				t.Errorf("%s: self must always be castable", name)
			}
			var sameNodePeer, remotePeer int = -1, -1
			for p := 0; p < th.N; p++ {
				if p == th.ID {
					continue
				}
				if th.Distance(p) != topo.LevelRemote {
					sameNodePeer = p
				} else {
					remotePeer = p
				}
			}
			if got := s.Cast(th, sameNodePeer) != nil; got != c.sameNode {
				t.Errorf("%s: same-node castable = %v, want %v", name, got, c.sameNode)
			}
			if s.Cast(th, remotePeer) != nil {
				t.Errorf("%s: remote segment must never be castable", name)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestReadWriteElem(t *testing.T) {
	_, err := Run(testCfg(4, 2, Processes, true), func(th *Thread) {
		s := Alloc[int64](th, 40, 8, 1) // cyclic layout
		th.Barrier()
		// Thread 0 writes every element; everyone reads its own affinity
		// elements plus one remote.
		if th.ID == 0 {
			for i := 0; i < 40; i++ {
				WriteElem(th, s, i, int64(i*i))
			}
		}
		th.Barrier()
		for i := th.ID; i < 40; i += th.N {
			if got := ReadElem(th, s, i); got != int64(i*i) {
				t.Errorf("elem %d = %d, want %d", i, got, i*i)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLockMutualExclusionAcrossThreads(t *testing.T) {
	counter := 0
	_, err := Run(testCfg(8, 4, Processes, true), func(th *Thread) {
		l := AllocLock(th, 0)
		th.Barrier()
		for i := 0; i < 5; i++ {
			l.Lock(th)
			c := counter
			th.Compute(0.00001)
			counter = c + 1
			l.Unlock(th)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if counter != 40 {
		t.Errorf("counter = %d, want 40 (lost updates => broken lock)", counter)
	}
}

func TestLockRemoteCostsMore(t *testing.T) {
	var homeCost, remoteCost sim.Duration
	_, err := Run(testCfg(4, 2, Processes, true), func(th *Thread) {
		l := AllocLock(th, 0)
		th.Barrier()
		if th.ID == 0 {
			start := th.Now()
			l.Lock(th)
			l.Unlock(th)
			homeCost = th.Now() - start
		}
		th.Barrier()
		if th.ID == 2 { // other node
			start := th.Now()
			l.Lock(th)
			l.Unlock(th)
			remoteCost = th.Now() - start
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if remoteCost <= homeCost {
		t.Errorf("remote lock RT (%v) must exceed home lock (%v)", remoteCost, homeCost)
	}
}

func TestTryLock(t *testing.T) {
	_, err := Run(testCfg(2, 2, Processes, true), func(th *Thread) {
		l := AllocLock(th, 0)
		th.Barrier()
		if th.ID == 0 {
			if !l.TryLock(th) {
				t.Error("TryLock on free lock must succeed")
			}
			th.P.Advance(10 * sim.Millisecond)
			l.Unlock(th)
		} else {
			th.P.Advance(sim.Millisecond)
			if l.TryLock(th) {
				t.Error("TryLock on held lock must fail")
			}
			th.P.Advance(20 * sim.Millisecond)
			if !l.TryLock(th) {
				t.Error("TryLock after release must succeed")
			}
			l.Unlock(th)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectives(t *testing.T) {
	_, err := Run(testCfg(6, 3, Processes, true), func(th *Thread) {
		if got := AllReduceSum(th, float64(th.ID)); got != 15 {
			t.Errorf("AllReduceSum = %g, want 15", got)
		}
		if got := AllReduceMax(th, float64(th.ID*th.ID)); got != 25 {
			t.Errorf("AllReduceMax = %g, want 25", got)
		}
		if got := AllReduceSumInt(th, int64(1)); got != 6 {
			t.Errorf("AllReduceSumInt = %d, want 6", got)
		}
		if got := Broadcast(th, 2, th.ID*7, 8); got != 14 {
			t.Errorf("Broadcast = %d, want 14", got)
		}
		all := AllGather(th, th.ID+100, 8)
		for i, v := range all {
			if v != i+100 {
				t.Errorf("AllGather[%d] = %d, want %d", i, v, i+100)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPthreadsShareConnectionCost(t *testing.T) {
	// 4 threads/node all flooding remote peers: pthreads backend should be
	// slower than processes for many small messages (injection gap
	// serialization on the shared connection).
	run := func(b Backend) sim.Duration {
		st, err := Run(testCfg(8, 4, b, true), func(th *Thread) {
			s := Alloc[byte](th, 8*64, 1, 64)
			th.Barrier()
			if th.ID < 4 {
				peer := th.ID + 4 // other node
				buf := make([]byte, 64)
				for k := 0; k < 50; k++ {
					PutT(th, s, peer, 0, buf)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.Elapsed
	}
	proc, pth := run(Processes), run(Pthreads)
	if pth <= proc {
		t.Errorf("pthreads small-message flood (%v) should exceed processes (%v)", pth, proc)
	}
}

func TestSameNodeThreadsQuery(t *testing.T) {
	_, err := Run(testCfg(8, 4, Processes, true), func(th *Thread) {
		group := th.SameNodeThreads()
		if len(group) != 4 {
			t.Errorf("thread %d: group size %d, want 4", th.ID, len(group))
		}
		for _, r := range group {
			if r/4 != th.ID/4 {
				t.Errorf("thread %d grouped with off-node %d", th.ID, r)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}, func(*Thread) {}); err == nil {
		t.Error("nil machine must error")
	}
	if _, err := Run(Config{Machine: topo.Lehman()}, func(*Thread) {}); err == nil {
		t.Error("zero threads must error")
	}
	cfg := testCfg(4, 2, Processes, true)
	cfg.Machine = &topo.Machine{Name: "bad", DefaultConduit: "warp-drive",
		Nodes: 1, SocketsPerNode: 1, CoresPerSocket: 4, ThreadsPerCore: 1,
		MemBWSocket: 1, NUMAFactor: 1, SMTThroughput: 1}
	cfg.Threads, cfg.ThreadsPerNode = 2, 2
	if _, err := Run(cfg, func(*Thread) {}); err == nil {
		t.Error("unknown conduit must error")
	}
}

func TestDeterministicElapsed(t *testing.T) {
	run := func() sim.Duration {
		st, err := Run(testCfg(8, 4, Processes, true), func(th *Thread) {
			s := Alloc[float64](th, 1024, 8, 128)
			th.Barrier()
			src := make([]float64, 128)
			PutT(th, s, (th.ID+3)%th.N, 0, src)
			th.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.Elapsed
	}
	if a, b := run(), run(); a != b {
		t.Errorf("identical runs differ: %v vs %v", a, b)
	}
}

func TestAllocMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape-mismatch panic")
		}
	}()
	Run(testCfg(2, 2, Processes, true), func(th *Thread) {
		if th.ID == 0 {
			Alloc[float64](th, 64, 8, 4)
		} else {
			Alloc[float64](th, 32, 8, 4)
		}
	})
}

func TestPutRangeCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected range panic")
		}
	}()
	Run(testCfg(2, 2, Processes, true), func(th *Thread) {
		s := Alloc[byte](th, 16, 1, 8)
		th.Barrier()
		PutT(th, s, 1, 4, make([]byte, 8)) // [4:12) outside 8-elem partition
	})
}

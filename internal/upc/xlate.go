package upc

import "repro/internal/sim"

// Shared-pointer translation cost model. A fine-grained shared access
// (ReadElem / WriteElem) decodes (thread, block, offset) from the
// shared pointer before it can touch memory — the per-access overhead
// Table 3.1 shows dominating un-cast UPC shared access. Three regimes,
// selected by the machine model (see topo.Machine and the "+xcache" /
// "+xassist" preset suffixes):
//
//   - software: every access pays the full decode, Machine.PtrXlate
//     seconds (the Berkeley runtime's measured deref cost);
//   - cached: a per-thread translation cache keyed by (array, block)
//     holds completed decodes; a hit re-derives only the offset within
//     the cached block (xlateHitFraction of the full decode), a miss
//     pays the full decode and installs the entry;
//   - hardware assist: the decode retires in one core cycle, the
//     Serres-style hardware-assisted translation regime — effectively
//     free at the simulator's nanosecond resolution.
//
// Accounting is exact and deterministic: per-thread counters accumulate
// accesses, hits and misses, and each barrier flushes the deltas as
// trace counters (xlate_access / xlate_hit / xlate_miss), so metrics
// manifests carry identical totals at any -parallel or -shards setting.

const (
	// xlateHitFraction is the share of the full software decode a
	// translation-cache hit still pays: the offset re-derivation within a
	// block whose (thread, base) decode is cached.
	xlateHitFraction = 0.25
	// xlateWays is the cache associativity. A small set-associative array
	// with per-set LRU keeps lookups allocation-free and the replacement
	// sequence a pure function of the access stream.
	xlateWays = 4
)

// xlateCosts are the per-access charges of the three regimes, resolved
// once per runtime from the machine model.
type xlateCosts struct {
	miss   sim.Duration // full software decode (PtrXlate)
	hit    sim.Duration // offset-only re-derivation
	assist sim.Duration // one core cycle, truncated to simulator resolution
	cached bool         // machine has a translation cache
	hw     bool         // machine has hardware assist
}

// xlateState is one thread's translation accounting: running totals plus
// the high-water marks already flushed as trace counters.
type xlateState struct {
	cache                  *xlateCache
	accesses, hits, misses int64
	emitted                [3]int64 // flushed access/hit/miss totals
}

// xlateAccess charges one fine-grained translation for block blockNum of
// shared array id, under the machine's translation regime.
func (t *Thread) xlateAccess(id uint32, blockNum int) {
	rt := t.rt
	t.xl.accesses++
	if rt.xlate.hw {
		t.P.Advance(rt.xlate.assist)
		return
	}
	if rt.xlate.cached {
		if t.xl.cache == nil {
			t.xl.cache = newXlateCache(rt.Cfg.Machine.XlateCacheLines)
		}
		if t.xl.cache.lookup(uint64(id+1)<<32 | uint64(uint32(blockNum))) {
			t.xl.hits++
			t.P.Advance(rt.xlate.hit)
			return
		}
	}
	t.xl.misses++
	t.P.Advance(rt.xlate.miss)
}

// XlateStats reports this thread's translation accounting so far:
// total fine-grained accesses, cache hits, and full decodes (misses; on
// machines without a translation cache every access is a full decode).
func (t *Thread) XlateStats() (accesses, hits, misses int64) {
	return t.xl.accesses, t.xl.hits, t.xl.misses
}

// flushXlateCounters emits the translation counter deltas accumulated
// since the last flush. Called at barriers — a deterministic point in
// every thread's event order — so the merged counter stream is
// byte-identical at any -parallel or -shards setting. Free when
// untraced or when no fine-grained access happened since the last
// barrier.
func (t *Thread) flushXlateCounters() {
	if t.xl.accesses == t.xl.emitted[0] || !t.rt.Eng.Tracing() {
		return
	}
	if d := t.xl.accesses - t.xl.emitted[0]; d > 0 {
		t.P.TraceCounter("upc", "xlate_access", d)
	}
	if d := t.xl.hits - t.xl.emitted[1]; d > 0 {
		t.P.TraceCounter("upc", "xlate_hit", d)
	}
	if d := t.xl.misses - t.xl.emitted[2]; d > 0 {
		t.P.TraceCounter("upc", "xlate_miss", d)
	}
	t.xl.emitted = [3]int64{t.xl.accesses, t.xl.hits, t.xl.misses}
}

// xlateCache is a set-associative translation cache with per-set LRU
// replacement: fixed arrays, no allocation per lookup, and a hit/miss
// sequence that is a pure function of the access stream — the
// determinism the counter manifests gate on. Keys are
// (arrayID+1)<<32 | blockNum, so the zero key means an empty way.
type xlateCache struct {
	sets  int // power of two
	keys  []uint64
	stamp []uint64 // per-way LRU stamps
	tick  uint64
}

// newXlateCache rounds the requested capacity up to a whole number of
// power-of-two sets of xlateWays ways.
func newXlateCache(lines int) *xlateCache {
	sets := 1
	for sets*xlateWays < lines {
		sets <<= 1
	}
	return &xlateCache{
		sets:  sets,
		keys:  make([]uint64, sets*xlateWays),
		stamp: make([]uint64, sets*xlateWays),
	}
}

// Capacity reports the rounded entry count.
func (c *xlateCache) Capacity() int { return c.sets * xlateWays }

// lookup probes for key, refreshing its LRU stamp on a hit; on a miss it
// installs key over the set's least-recently-used way. Reports a hit.
func (c *xlateCache) lookup(key uint64) bool {
	set := int((key*0x9e3779b97f4a7c15)>>33) & (c.sets - 1)
	base := set * xlateWays
	c.tick++
	victim, oldest := base, ^uint64(0)
	for i := base; i < base+xlateWays; i++ {
		if c.keys[i] == key {
			c.stamp[i] = c.tick
			return true
		}
		if c.stamp[i] < oldest {
			oldest = c.stamp[i]
			victim = i
		}
	}
	c.keys[victim] = key
	c.stamp[victim] = c.tick
	return false
}

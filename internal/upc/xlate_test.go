package upc

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
)

func TestXlateCacheCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ lines, want int }{
		{1, 4}, {4, 4}, {5, 8}, {255, 256}, {256, 256}, {257, 512},
	} {
		if got := newXlateCache(tc.lines).Capacity(); got != tc.want {
			t.Errorf("newXlateCache(%d).Capacity() = %d, want %d", tc.lines, got, tc.want)
		}
	}
}

// TestXlateCacheLRU drives a single-set cache (capacity 4, every key
// collides) through fill, reuse and eviction: the least-recently-used
// way must be the one replaced.
func TestXlateCacheLRU(t *testing.T) {
	c := newXlateCache(1)
	for k := uint64(1); k <= 4; k++ {
		if c.lookup(k) {
			t.Fatalf("cold lookup(%d) hit", k)
		}
	}
	if !c.lookup(1) {
		t.Fatal("lookup(1) after fill missed")
	}
	if c.lookup(5) {
		t.Fatal("lookup(5) hit before install")
	}
	// 5 must have evicted the LRU way (key 2); 1, 3, 4 stay resident.
	for _, k := range []uint64{1, 3, 4, 5} {
		if !c.lookup(k) {
			t.Errorf("lookup(%d) missed after LRU eviction", k)
		}
	}
	if c.lookup(2) {
		t.Error("lookup(2) hit: LRU eviction replaced the wrong way")
	}
}

// xlateProbe runs a fixed fine-grained kernel (rotating strided ReadElem
// sweeps plus a read-modify-write pass, all castable) on machine m and
// reports the kernel-region time, summed counters, and data checksum.
func xlateProbe(t *testing.T, m *topo.Machine) (elapsed sim.Duration, acc, hits, misses, check int64) {
	t.Helper()
	cfg := Config{Machine: m, Threads: 8, ThreadsPerNode: 8, Backend: Pthreads, Seed: 1}
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const elems, block, passes = 1 << 12, 16, 3
	times := make([]sim.Duration, cfg.Threads)
	sums := make([]int64, cfg.Threads)
	rt.Start(func(th *Thread) {
		s := Alloc[int64](th, elems, 8, block)
		loc := s.Local(th)
		for j := range loc {
			loc[j] = int64(s.GlobalIndex(th.ID, j))
		}
		th.Barrier()
		t0 := th.Now()
		span := elems / th.N
		sum := int64(0)
		for p := 0; p < passes; p++ {
			start := (th.ID*span + p*2*block) % elems
			for k := 0; k < span; k++ {
				sum += ReadElem(th, s, (start+k)%elems)
			}
		}
		for k := 0; k < span; k++ {
			i := s.GlobalIndex(th.ID, k)
			//upcvet:sharedrace -- each thread rewrites only its own partition (GlobalIndex(th.ID, k)); the probe sweep is read-only
			WriteElem(th, s, i, ReadElem(th, s, i)+1)
		}
		th.Barrier()
		times[th.ID] = th.Now() - t0
		sums[th.ID] = sum
	})
	if err := rt.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Threads; i++ {
		a, h, ms := rt.Thread(i).XlateStats()
		acc += a
		hits += h
		misses += ms
		check += sums[i]
	}
	return times[0], acc, hits, misses, check
}

// TestXlateRegimes checks the three translation regimes against each
// other on the same kernel: identical computed data (hardware assist is
// a cost model, not a semantic change), strictly ordered kernel times
// (software > cached > assist), and regime-consistent accounting.
func TestXlateRegimes(t *testing.T) {
	machine := func(name string) *topo.Machine {
		m, ok := topo.ByName(name)
		if !ok {
			t.Fatalf("preset %q missing", name)
		}
		return m
	}
	swT, swA, swH, swM, swC := xlateProbe(t, machine("lehman"))
	caT, caA, caH, caM, caC := xlateProbe(t, machine("lehman+xcache"))
	hwT, hwA, hwH, hwM, hwC := xlateProbe(t, machine("lehman+xassist"))

	if swC != caC || swC != hwC {
		t.Fatalf("checksums diverge across regimes: sw=%d cache=%d assist=%d", swC, caC, hwC)
	}
	if swA != caA || swA != hwA {
		t.Fatalf("access counts diverge: sw=%d cache=%d assist=%d", swA, caA, hwA)
	}
	if !(swT > caT && caT > hwT) {
		t.Errorf("kernel times not ordered software > cached > assist: %v > %v > %v", swT, caT, hwT)
	}
	if swH != 0 || swM != swA {
		t.Errorf("software regime: hits=%d misses=%d accesses=%d (want 0 hits, all misses)", swH, swM, swA)
	}
	if caH == 0 || caH+caM != caA {
		t.Errorf("cached regime: hits=%d misses=%d accesses=%d (want hits > 0, hits+misses = accesses)", caH, caM, caA)
	}
	if caH < caA/2 {
		t.Errorf("cached regime hit rate %d/%d below 50%% on a mostly-sequential stream", caH, caA)
	}
	if hwH != 0 || hwM != 0 || hwA == 0 {
		t.Errorf("assist regime: hits=%d misses=%d accesses=%d (want counted accesses, no cache traffic)", hwH, hwM, hwA)
	}
}

// TestXlateCachePressure shrinks the translation cache below a
// block-strided working set: cycling over 64 distinct blocks, an
// 8-entry cache thrashes under LRU while the default-size cache hits on
// every pass after the first. (The strided stream touches each block
// once per pass, so hits can only come from cross-pass reuse — unlike a
// sequential sweep, where intra-block streaming hits mask capacity.)
func TestXlateCachePressure(t *testing.T) {
	probe := func(m *topo.Machine) (acc, hits int64, check int64) {
		cfg := Config{Machine: m, Threads: 1, ThreadsPerNode: 1, Seed: 1}
		rt, err := NewRuntime(cfg)
		if err != nil {
			t.Fatal(err)
		}
		const block, blocks, passes = 16, 64, 4
		rt.Start(func(th *Thread) {
			s := Alloc[int64](th, block*blocks, 8, block)
			loc := s.Local(th)
			for j := range loc {
				loc[j] = int64(j)
			}
			th.Barrier()
			for p := 0; p < passes; p++ {
				for b := 0; b < blocks; b++ {
					check += ReadElem(th, s, b*block)
				}
			}
			th.Barrier()
			acc, hits, _ = th.XlateStats()
		})
		if err := rt.Eng.Run(); err != nil {
			t.Fatal(err)
		}
		return acc, hits, check
	}
	tiny := mustPreset(t, "lehman+xcache")
	tiny.XlateCacheLines = 8 // capacity 8 entries vs the 64-block stream
	accT, hitsT, checkT := probe(tiny)
	accD, hitsD, checkD := probe(mustPreset(t, "lehman+xcache"))
	if checkT != checkD {
		t.Fatalf("capacity must not change results: %d vs %d", checkT, checkD)
	}
	if accT != accD {
		t.Fatalf("capacity must not change access counts: %d vs %d", accT, accD)
	}
	if hitsD != accD-64 {
		t.Errorf("default cache hits %d of %d, want all but the 64 compulsory misses", hitsD, accD)
	}
	if hitsT > accT/4 {
		t.Errorf("tiny cache hit rate %d/%d too high under capacity pressure", hitsT, accT)
	}
}

func mustPreset(t *testing.T, name string) *topo.Machine {
	t.Helper()
	m, ok := topo.ByName(name)
	if !ok {
		t.Fatalf("preset %q missing", name)
	}
	return m
}

// TestXlateBulkCharge pins ChargeXlate's regime behavior: hardware
// assist retires bulk translations at cycle cost while the software
// regimes pay the full decode, and the accounting lands in the counters.
func TestXlateBulkCharge(t *testing.T) {
	run := func(m *topo.Machine) (sim.Duration, int64, int64) {
		var d sim.Duration
		var acc, misses int64
		_, err := Run(Config{Machine: m, Threads: 1, ThreadsPerNode: 1, Seed: 1},
			func(th *Thread) {
				t0 := th.Now()
				th.ChargeXlate(1000)
				d = th.Now() - t0
				acc, _, misses = th.XlateStats()
			})
		if err != nil {
			t.Fatal(err)
		}
		return d, acc, misses
	}
	swD, swA, swM := run(mustPreset(t, "lehman"))
	hwD, hwA, hwM := run(mustPreset(t, "lehman+xassist"))
	if swA != 1000 || swM != 1000 {
		t.Errorf("software bulk accounting: accesses=%d misses=%d, want 1000/1000", swA, swM)
	}
	if hwA != 1000 || hwM != 0 {
		t.Errorf("assist bulk accounting: accesses=%d misses=%d, want 1000/0", hwA, hwM)
	}
	if hwD >= swD {
		t.Errorf("assist bulk charge %v not below software %v", hwD, swD)
	}
}
